//! Profile search: the *shortest travel cost function* query.
//!
//! Computes `f_{s,v}(t)` (Def. 2) for all `v` — the function the paper's
//! "cost function query" experiments (Fig. 8 b/d/f/h) return — by
//! label-correcting relaxation over whole PLFs:
//!
//! ```text
//! dist[s] = 0;   relax (u,v):  dist[v] ← min(dist[v], Compound(dist[u], w_{u,v}))
//! ```
//!
//! Terminates on FIFO graphs with strictly positive edge costs (every
//! improvement lowers the function value somewhere by a bounded amount). Used
//! as the correctness oracle for every index in the workspace, and as the
//! matrix builder inside TD-G-tree.

use crate::astar::Entry;
use crate::budget::QueryBudget;
use std::collections::{BinaryHeap, VecDeque};
use td_graph::{FrozenGraph, Path, TdGraph, VertexId};
use td_plf::{fle, Plf, EPS_COST};

/// Result of a profile search from a source vertex.
#[derive(Clone, Debug)]
pub struct ProfileResult {
    /// Source vertex.
    pub source: VertexId,
    /// `dist[v]` = shortest travel cost function `f_{s,v}(t)`; `None` when
    /// unreachable. `dist[s]` is the zero function.
    pub dist: Vec<Option<Plf>>,
}

impl ProfileResult {
    /// Cost to `d` departing at `t`.
    pub fn cost(&self, d: VertexId, t: f64) -> Option<f64> {
        self.dist[d as usize].as_ref().map(|f| f.eval(t))
    }

    /// Recovers the shortest path to `d` departing at `t` by walking witness
    /// (predecessor) annotations backwards.
    pub fn path(&self, d: VertexId, t: f64) -> Option<Path> {
        self.dist[d as usize].as_ref()?;
        let mut vertices = vec![d];
        let mut cur = d;
        let mut guard = 0usize;
        while cur != self.source {
            let f = self.dist[cur as usize].as_ref()?;
            let (_, via) = f.eval_with_via(t);
            debug_assert_ne!(via, td_plf::NO_VIA, "non-source vertex lacks predecessor");
            vertices.push(via);
            cur = via;
            guard += 1;
            if guard > self.dist.len() {
                return None; // corrupt witnesses; fail loudly in tests
            }
        }
        vertices.reverse();
        Some(Path::new(vertices))
    }
}

/// Profile search from `s` over the whole graph.
pub fn profile_search(g: &TdGraph, s: VertexId) -> ProfileResult {
    profile_search_impl(g, s, None)
}

/// [`profile_search`] over the frozen CSR/arena layout.
///
/// `fg` must be `g.freeze()` (same vertex/edge ids): adjacency walks and the
/// per-edge `min_cost` bounds come from the frozen arrays, while the function
/// algebra (compound/minimum) still runs on `g`'s owned [`Plf`]s. Tracks a
/// lower bound on each label's minimum and an upper bound on its maximum so
/// a relaxation is skipped — without touching any breakpoints — when
/// `min(dist[u]) + min_cost(e) ≥ max(dist[v])`, i.e. when the candidate can
/// never improve the existing label anywhere. On road networks this prunes
/// most re-relaxations of already-tight labels, which is where the
/// label-correcting search spends its time.
pub fn profile_search_frozen(g: &TdGraph, fg: &FrozenGraph, s: VertexId) -> ProfileResult {
    let (result, complete) = profile_search_frozen_bounded(g, fg, s, &QueryBudget::UNLIMITED);
    debug_assert!(complete, "unlimited budget cannot exhaust");
    result
}

/// [`profile_search_frozen`] under a [`QueryBudget`]: the settle cap counts
/// relaxation rounds (queue pops) and the deadline is checked on the same
/// stride as the scalar searches. Returns the labels plus a completeness
/// flag: when `false`, the search stopped early and every present label is
/// a pointwise *upper bound* on the true cost function (label-correcting
/// labels only ever decrease), while absent labels say nothing — exactly
/// the safe side for an anytime profile answer.
pub fn profile_search_frozen_bounded(
    g: &TdGraph,
    fg: &FrozenGraph,
    s: VertexId,
    budget: &QueryBudget,
) -> (ProfileResult, bool) {
    let mut stats = CorridorStats::default();
    profile_frozen_impl(g, fg, s, budget, Prune::None, &mut stats)
}

/// Scalar `[lower, upper]` corridor for a profile search from one source:
/// for every vertex `v`, `lo[v] ≤ f_{s,v}(t) ≤ hi[v]` at every departure
/// time `t`. `lo` is a Dijkstra over the per-edge `min_cost` bounds, `hi`
/// one over `max_cost` — both stream straight off the frozen arrays the
/// arena precomputed, so deriving the corridor costs two cheap scalar
/// searches (no PLF is touched). Unreachable vertices hold `INFINITY` in
/// both rails.
#[derive(Clone, Debug)]
pub struct ProfileCorridor {
    /// Admissible lower bound on `f_{s,v}` everywhere.
    pub lo: Vec<f64>,
    /// Upper bound on `f_{s,v}` everywhere: some concrete path achieves a
    /// cost ≤ `hi[v]` at every departure time.
    pub hi: Vec<f64>,
}

/// Computes the scalar min/max corridor from `s` (the Strasser–Wagner–Zeitz
/// prelude to corridor-bounded profile computation).
pub fn profile_corridor(fg: &FrozenGraph, s: VertexId) -> ProfileCorridor {
    ProfileCorridor {
        lo: scalar_bound_dists(fg, s, false),
        hi: scalar_bound_dists(fg, s, true),
    }
}

/// Dijkstra over one scalar rail of the corridor: per-edge `min_cost`
/// (`upper == false`) or `max_cost` (`upper == true`) weights.
fn scalar_bound_dists(fg: &FrozenGraph, s: VertexId, upper: bool) -> Vec<f64> {
    let n = fg.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    dist[s as usize] = 0.0;
    heap.push(Entry {
        key: 0.0,
        vertex: s,
    });
    while let Some(Entry { key, vertex: u }) = heap.pop() {
        if done[u as usize] {
            continue;
        }
        done[u as usize] = true;
        let (heads, edges, mins) = fg.out_slices_with_min(u);
        for ((&v, &e), &emin) in heads.iter().zip(edges.iter()).zip(mins.iter()) {
            if done[v as usize] {
                continue;
            }
            let w = if upper { fg.max_cost(e) } else { emin };
            let cand = key + w;
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push(Entry {
                    key: cand,
                    vertex: v,
                });
            }
        }
    }
    dist
}

/// Skip/relax counters of a corridor-bounded profile search — surfaced so
/// benches and conformance can report how much work the corridor saved and
/// assert exactness against the unbounded search regardless.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CorridorStats {
    /// Compound/merge operations skipped by the corridor win test alone
    /// (the candidate's scalar lower bound cleared the corridor's upper
    /// rail by more than [`EPS_COST`]).
    pub skipped: u64,
    /// Compound operations actually performed.
    pub relaxed: u64,
}

impl CorridorStats {
    /// These counters mapped onto the workspace-wide [`td_obs::SearchStats`]
    /// vocabulary, so profile searches export through the same telemetry
    /// pipeline as the scalar/A* loops: skips become `corridor_kills`,
    /// compounds become `relaxed`.
    pub fn as_search_stats(&self) -> td_obs::SearchStats {
        td_obs::SearchStats {
            relaxed: self.relaxed,
            corridor_kills: self.skipped,
            ..td_obs::SearchStats::default()
        }
    }
}

/// Corridor-bounded profile search: [`profile_search_frozen`] plus the
/// corridor win test. A candidate compound over edge `(u, v)` is linked and
/// merged only if its scalar lower bound `min(dist[u]) + min_cost(e)` beats
/// the corridor's upper rail `hi[v]` somewhere in the window — tested
/// epsilon-tolerantly ([`fle`] with [`EPS_COST`]), so a compound that *ties*
/// the rail within epsilon is never dropped.
///
/// **Exactness:** `hi[v]` is realized by a concrete path, so the final label
/// satisfies `f_{s,v} ≤ hi[v]` pointwise; a skipped candidate is everywhere
/// `> hi[v] + ε` and therefore nowhere on the lower envelope. Along the
/// max-metric shortest path realizing `hi[v]` every prefix relaxation has
/// `min(dist[u]) + min_cost(e) ≤ hi[v]`, so the witness path itself is never
/// skipped and reachability is preserved. Conformance asserts the result
/// *value-identical* to the unbounded search on the union probe grid (the
/// representations may keep differently-anchored but tolerance-equal
/// breakpoints, because `simplify` is ε-tolerant and the two searches merge
/// over different grids).
pub fn profile_search_frozen_corridor(
    g: &TdGraph,
    fg: &FrozenGraph,
    s: VertexId,
) -> (ProfileResult, CorridorStats) {
    let corridor = profile_corridor(fg, s);
    let mut stats = CorridorStats::default();
    let (result, complete) = profile_frozen_impl(
        g,
        fg,
        s,
        &QueryBudget::UNLIMITED,
        Prune::Rails(&corridor),
        &mut stats,
    );
    debug_assert!(complete, "unlimited budget cannot exhaust");
    (result, stats)
}

/// Backward Dijkstra over the per-edge `min_cost` bounds on the *reversed*
/// adjacency (`csr.in_slices`): `rev_lo[v]` is an admissible lower bound on
/// the cost of any `v → d` path at any departure time, `INFINITY` when `v`
/// cannot reach `d` at all.
fn reverse_lower_dists(fg: &FrozenGraph, d: VertexId) -> Vec<f64> {
    let n = fg.num_vertices();
    let mut dist = vec![f64::INFINITY; n];
    let mut done = vec![false; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    dist[d as usize] = 0.0;
    heap.push(Entry {
        key: 0.0,
        vertex: d,
    });
    while let Some(Entry { key, vertex: u }) = heap.pop() {
        if done[u as usize] {
            continue;
        }
        done[u as usize] = true;
        let (tails, edges) = fg.csr.in_slices(u);
        for (&v, &e) in tails.iter().zip(edges.iter()) {
            if done[v as usize] {
                continue;
            }
            let cand = key + fg.min_cost(e);
            if cand < dist[v as usize] {
                dist[v as usize] = cand;
                heap.push(Entry {
                    key: cand,
                    vertex: v,
                });
            }
        }
    }
    dist
}

/// *Targeted* corridor profile search `s → d`: computes the exact shortest
/// travel cost function `f_{s,d}(t)` while pruning every relaxation that
/// provably cannot contribute to `d`'s lower envelope.
///
/// Two scalar rails frame the corridor (the CATCHUp-style prelude): a
/// forward max-metric Dijkstra gives `ub = hi_s[d]` — some concrete `s → d`
/// path costs ≤ `ub` at *every* departure time — and a backward min-metric
/// Dijkstra from `d` gives `rev_lo[v]`, an everywhere-lower bound on any
/// `v → d` continuation. A compound over `(u, v)` is skipped when
/// `min(dist[u]) + min_cost(e) + rev_lo[v] > ub + ε` (ε-tolerant via
/// [`fle`]/[`EPS_COST`]): any `s → … → u → v → … → d` path through it costs
/// more than `ub` at every time and is nowhere on `f_{s,d}`. Unlike the
/// one-to-all rails this cuts *whole subgraphs* — every branch that wanders
/// away from the `s → d` corridor dies at its first off-corridor edge.
///
/// **Exactness at `d`** (intermediate labels are deliberately partial): for
/// any departure `t`, walk the optimal path `P_t`. By induction its prefix
/// labels satisfy `label_u(t) ≤ cost(prefix, t)`, so at each edge the test
/// value is ≤ `cost(P_t, t) = f_{s,d}(t) ≤ ub` — the optimal path is never
/// pruned, at any `t`. Equality is value-level, same contract as
/// [`profile_search_frozen_corridor`].
///
/// Returns `None` iff `d` is unreachable from `s`.
pub fn profile_search_frozen_corridor_to(
    g: &TdGraph,
    fg: &FrozenGraph,
    s: VertexId,
    d: VertexId,
) -> (Option<Plf>, CorridorStats) {
    let mut stats = CorridorStats::default();
    let ub = scalar_bound_dists(fg, s, true)[d as usize];
    if ub.is_infinite() {
        // Max-metric reachability equals reachability (same adjacency,
        // finite weights): d cannot be reached at all.
        return (None, stats);
    }
    let rev_lo = reverse_lower_dists(fg, d);
    let (mut result, complete) = profile_frozen_impl(
        g,
        fg,
        s,
        &QueryBudget::UNLIMITED,
        Prune::Target {
            rev_lo: &rev_lo,
            ub,
        },
        &mut stats,
    );
    debug_assert!(complete, "unlimited budget cannot exhaust");
    (result.dist[d as usize].take(), stats)
}

/// Which corridor win test [`profile_frozen_impl`] applies per relaxation.
#[derive(Clone, Copy)]
enum Prune<'a> {
    /// Unbounded label-correcting search.
    None,
    /// One-to-all rails: skip when the candidate's min bound clears `hi[v]`.
    Rails(&'a ProfileCorridor),
    /// Targeted `s → d`: skip when even the best continuation through `v`
    /// clears the everywhere-valid `s → d` upper bound.
    Target { rev_lo: &'a [f64], ub: f64 },
}

fn profile_frozen_impl(
    g: &TdGraph,
    fg: &FrozenGraph,
    s: VertexId,
    budget: &QueryBudget,
    prune: Prune<'_>,
    stats: &mut CorridorStats,
) -> (ProfileResult, bool) {
    debug_assert_eq!(g.num_vertices(), fg.num_vertices());
    debug_assert_eq!(g.num_edges(), fg.num_edges());
    let n = g.num_vertices();
    let mut dist: Vec<Option<Plf>> = vec![None; n];
    // lab_min[v] ≤ min(dist[v]) and lab_max[v] ≥ max(dist[v]), maintained in
    // O(1) per relaxation from the arena's per-edge bounds — never by
    // scanning breakpoints: a compound's values lie within
    // [min f + min g, max f + max g], and a pointwise minimum's within
    // [min of mins, min of maxes].
    let mut lab_min = vec![f64::INFINITY; n];
    let mut lab_max = vec![f64::INFINITY; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    dist[s as usize] = Some(Plf::zero());
    lab_min[s as usize] = 0.0;
    lab_max[s as usize] = 0.0;
    queue.push_back(s);
    in_queue[s as usize] = true;

    let mut pops = 0usize;
    let pop_limit = 64 * n * n + 1024;
    while let Some(u) = queue.pop_front() {
        if budget.exhausted(pops as u64) {
            return (ProfileResult { source: s, dist }, false);
        }
        pops += 1;
        assert!(
            pops <= pop_limit,
            "profile search failed to converge after {pops} relaxation rounds — \
             the graph likely contains a (near-)zero-cost cycle"
        );
        in_queue[u as usize] = false;
        let du = dist[u as usize]
            .clone()
            .expect("queued vertices have labels");
        let du_min = lab_min[u as usize];
        let (heads, edges, mins) = fg.out_slices_with_min(u);
        for ((&v, &e), &emin) in heads.iter().zip(edges.iter()).zip(mins.iter()) {
            // Admissible prune: every value of the candidate compound is
            // ≥ min(du) + min(w_e); if that already clears the existing
            // label's maximum, the candidate is nowhere below it. The bound
            // streams in with the adjacency walk (no arena touch).
            if dist[v as usize].is_some() && du_min + emin >= lab_max[v as usize] {
                continue;
            }
            // Corridor win test: the candidate can only contribute to the
            // lower envelope if its scalar lower bound beats the corridor's
            // upper rail somewhere — epsilon-tolerant (`fle`/`EPS_COST`), so
            // a compound tying the rail within epsilon is never dropped.
            // The targeted variant adds the backward rail: even the best
            // continuation from `v` must still beat the `s → d` bound.
            match prune {
                Prune::None => {}
                Prune::Rails(c) => {
                    debug_assert!((v as usize) < c.hi.len());
                    if !fle(du_min + emin, c.hi[v as usize], EPS_COST) {
                        stats.skipped += 1;
                        continue;
                    }
                }
                Prune::Target { rev_lo, ub } => {
                    debug_assert!((v as usize) < rev_lo.len());
                    if !fle(du_min + emin + rev_lo[v as usize], ub, EPS_COST) {
                        stats.skipped += 1;
                        continue;
                    }
                }
            }
            stats.relaxed += 1;
            let cand = du.compound(g.weight(e), u);
            // Exact bounds, one fused pass over the points the compound just
            // wrote (still cache-hot). Exactness matters: the loose
            // sum-of-maxes bound degrades multiplicatively along paths and
            // stops the prune from ever firing on compound-heavy graphs.
            let (cand_min, cand_max) = cand.value_bounds();
            let improved = match &dist[v as usize] {
                None => true,
                Some(old) => {
                    let merged = old.minimum(&cand);
                    if merged.approx_eq(old, 1e-7) {
                        false
                    } else {
                        dist[v as usize] = Some(merged);
                        lab_min[v as usize] = lab_min[v as usize].min(cand_min);
                        lab_max[v as usize] = lab_max[v as usize].min(cand_max);
                        if !in_queue[v as usize] {
                            in_queue[v as usize] = true;
                            queue.push_back(v);
                        }
                        continue;
                    }
                }
            };
            if improved {
                dist[v as usize] = Some(cand);
                lab_min[v as usize] = cand_min;
                lab_max[v as usize] = cand_max;
                if !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    (ProfileResult { source: s, dist }, true)
}

/// Profile search from `s`, restricted to vertices for which `keep` returns
/// true (the search still *traverses* everything reachable; `keep` only
/// controls which functions are retained — memory matters on big graphs).
pub fn profile_search_to(
    g: &TdGraph,
    s: VertexId,
    keep: impl Fn(VertexId) -> bool,
) -> ProfileResult {
    let mut r = profile_search_impl(g, s, None);
    for v in 0..g.num_vertices() as u32 {
        if !keep(v) && v != s {
            r.dist[v as usize] = None;
        }
    }
    r
}

fn profile_search_impl(g: &TdGraph, s: VertexId, _reserved: Option<()>) -> ProfileResult {
    let n = g.num_vertices();
    let mut dist: Vec<Option<Plf>> = vec![None; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    dist[s as usize] = Some(Plf::zero());
    queue.push_back(s);
    in_queue[s as usize] = true;

    // Termination guard: label-correcting converges on FIFO graphs with
    // strictly positive costs; a (near-)zero-cost cycle could otherwise churn
    // forever on ε-improvements. The bound is far above any converging run.
    let mut pops = 0usize;
    let pop_limit = 64 * n * n + 1024;
    while let Some(u) = queue.pop_front() {
        pops += 1;
        assert!(
            pops <= pop_limit,
            "profile search failed to converge after {pops} relaxation rounds — \
             the graph likely contains a (near-)zero-cost cycle"
        );
        in_queue[u as usize] = false;
        let du = dist[u as usize]
            .clone()
            .expect("queued vertices have labels");
        for &(v, e) in g.out_edges(u) {
            let cand = du.compound(g.weight(e), u);
            let improved = match &dist[v as usize] {
                None => true,
                Some(old) => {
                    // Improved iff cand is strictly below old somewhere.
                    let merged = old.minimum(&cand);
                    if merged.approx_eq(old, 1e-7) {
                        false
                    } else {
                        dist[v as usize] = Some(merged);
                        if !in_queue[v as usize] {
                            in_queue[v as usize] = true;
                            queue.push_back(v);
                        }
                        continue;
                    }
                }
            };
            if improved {
                dist[v as usize] = Some(cand);
                if !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    ProfileResult { source: s, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    fn fig1_subnetwork() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        let w12 = Plf::from_pairs(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]).unwrap();
        let w29 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]).unwrap();
        let w14 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 15.0), (60.0, 25.0)]).unwrap();
        let w49 = Plf::from_pairs(&[(0.0, 5.0), (60.0, 15.0)]).unwrap();
        g.add_edge(0, 1, w12).unwrap();
        g.add_edge(1, 3, w29).unwrap();
        g.add_edge(0, 2, w14).unwrap();
        g.add_edge(2, 3, w49).unwrap();
        g
    }

    #[test]
    fn profile_agrees_with_scalar_dijkstra() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        for t in [0.0, 5.0, 17.0, 29.0, 42.0, 60.0, 75.0] {
            for d in 1..4u32 {
                let want = crate::scalar::shortest_path_cost(&g, 0, d, t).unwrap();
                let got = prof.cost(d, t).unwrap();
                assert!(
                    (want - got).abs() < 1e-6,
                    "d={d} t={t}: scalar {want} vs profile {got}"
                );
            }
        }
    }

    #[test]
    fn example_2_2_min_of_two_compounds() {
        // f_{1,9} = min(Compound(w14, w49), Compound(w12, w29)) per Example 2.2.
        let g = fig1_subnetwork();
        let w12 = g.weight(g.find_edge(0, 1).unwrap()).clone();
        let w29 = g.weight(g.find_edge(1, 3).unwrap()).clone();
        let w14 = g.weight(g.find_edge(0, 2).unwrap()).clone();
        let w49 = g.weight(g.find_edge(2, 3).unwrap()).clone();
        let want = w14.compound(&w49, 2).minimum(&w12.compound(&w29, 1));
        let got = profile_search(&g, 0).dist[3].clone().unwrap();
        assert!(got.approx_eq(&want, 1e-6), "got={got:?}\nwant={want:?}");
    }

    #[test]
    fn witnesses_recover_the_switching_path() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        // Early: via v4 (id 2). Late: via v2 (id 1) — Example 2.3.
        assert_eq!(prof.path(3, 0.0).unwrap().vertices, vec![0, 2, 3]);
        assert_eq!(prof.path(3, 60.0).unwrap().vertices, vec![0, 1, 3]);
    }

    #[test]
    fn recovered_paths_replay_to_reported_cost() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        for t in [0.0, 10.0, 30.0, 50.0, 70.0] {
            let p = prof.path(3, t).unwrap();
            let c = prof.cost(3, t).unwrap();
            assert!((p.cost(&g, t).unwrap() - c).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn frozen_profile_matches_vec_layout() {
        let g = fig1_subnetwork();
        let fg = g.freeze();
        for s in 0..4u32 {
            let want = profile_search(&g, s);
            let got = profile_search_frozen(&g, &fg, s);
            for d in 0..4u32 {
                match (&want.dist[d as usize], &got.dist[d as usize]) {
                    (Some(a), Some(b)) => {
                        for t in [0.0, 10.0, 25.0, 40.0, 60.0, 80.0] {
                            assert!((a.eval(t) - b.eval(t)).abs() < 1e-9, "s={s} d={d} t={t}");
                        }
                    }
                    (None, None) => {}
                    other => panic!("s={s} d={d}: {:?}", other.1.as_ref().map(|_| ())),
                }
            }
        }
    }

    #[test]
    fn unreachable_vertices_have_no_label() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        let prof = profile_search(&g, 0);
        assert!(prof.dist[2].is_none());
        assert!(prof.cost(2, 0.0).is_none());
        assert!(prof.path(2, 0.0).is_none());
    }

    #[test]
    fn keep_filter_drops_labels() {
        let g = fig1_subnetwork();
        let prof = profile_search_to(&g, 0, |v| v == 3);
        assert!(prof.dist[1].is_none());
        assert!(prof.dist[2].is_none());
        assert!(prof.dist[3].is_some());
        assert!(prof.dist[0].is_some()); // source always kept
    }

    #[test]
    fn source_label_is_zero() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        assert_eq!(prof.cost(0, 33.0), Some(0.0));
    }

    fn assert_bit_identical_labels(a: &ProfileResult, b: &ProfileResult, ctx: &str) {
        assert_eq!(a.source, b.source, "{ctx}");
        assert_eq!(a.dist.len(), b.dist.len(), "{ctx}");
        for (v, (x, y)) in a.dist.iter().zip(&b.dist).enumerate() {
            // Plf PartialEq is derived — exact on every breakpoint
            // coordinate and witness, i.e. bit-identity.
            assert_eq!(x, y, "{ctx}: label at v={v} diverges");
        }
    }

    #[test]
    fn corridor_rails_bound_the_profiles() {
        let g = fig1_subnetwork();
        let fg = g.freeze();
        for s in 0..4u32 {
            let corridor = profile_corridor(&fg, s);
            let prof = profile_search_frozen(&g, &fg, s);
            for v in 0..4u32 {
                match &prof.dist[v as usize] {
                    Some(f) => {
                        let (fmin, fmax) = f.value_bounds();
                        assert!(corridor.lo[v as usize] <= fmin + 1e-9, "s={s} v={v}");
                        assert!(fmax <= corridor.hi[v as usize] + 1e-9, "s={s} v={v}");
                    }
                    None => {
                        assert!(corridor.lo[v as usize].is_infinite(), "s={s} v={v}");
                        assert!(corridor.hi[v as usize].is_infinite(), "s={s} v={v}");
                    }
                }
            }
        }
    }

    #[test]
    fn corridor_search_is_bit_identical_to_unbounded() {
        let g = fig1_subnetwork();
        let fg = g.freeze();
        for s in 0..4u32 {
            let want = profile_search_frozen(&g, &fg, s);
            let (got, stats) = profile_search_frozen_corridor(&g, &fg, s);
            assert_bit_identical_labels(&want, &got, &format!("s={s}"));
            assert!(stats.relaxed > 0 || s == 3, "s={s}: nothing relaxed");
        }
    }

    #[test]
    fn corridor_skips_hopeless_detours_and_stays_exact() {
        // The 2-hop detour s → w → v costs ≥ 200 everywhere and reaches v
        // *first* (the cheap path has 3 hops), so the unbounded search forms
        // a throwaway label from it while the corridor (hi[v] = 10) skips
        // the compound outright — and the final labels must still match
        // bitwise, because the throwaway label is everywhere > hi[v] + ε
        // and the later merge erases every trace of it.
        let mut g = TdGraph::with_vertices(5);
        g.add_edge(0, 1, Plf::constant(100.0)).unwrap(); // s → w
        g.add_edge(
            1,
            4,
            Plf::from_pairs(&[(0.0, 100.0), (50.0, 120.0)]).unwrap(),
        )
        .unwrap(); // w → v
        g.add_edge(0, 2, Plf::constant(5.0)).unwrap(); // s → a
        g.add_edge(2, 3, Plf::constant(2.5)).unwrap(); // a → b
        g.add_edge(3, 4, Plf::constant(2.5)).unwrap(); // b → v
        let fg = g.freeze();
        let want = profile_search_frozen(&g, &fg, 0);
        let (got, stats) = profile_search_frozen_corridor(&g, &fg, 0);
        assert_bit_identical_labels(&want, &got, "detour");
        assert!(
            stats.skipped >= 1,
            "the w → v compound must be corridor-skipped, got {stats:?}"
        );
    }

    #[test]
    fn corridor_never_drops_an_epsilon_tie() {
        // Satellite regression (ISSUE 8): two 2-hop paths whose total costs
        // are equal within EPS_COST across the whole window. hi[v] comes
        // from the cheaper one; the dearer path relaxes v *first* (while v
        // has no label, so the corridor test is the sole decider) with a min
        // bound exceeding hi[v] by 5e-8 < EPS_COST. The epsilon-tolerant win
        // test (`fle`) must NOT skip it — a strict `<=` would drop the tie
        // and change which witness the final envelope keeps.
        let tie_leg = 5.0 + 5e-8;
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 2, Plf::constant(5.0)).unwrap(); // s → b (first)
        g.add_edge(2, 3, Plf::constant(tie_leg)).unwrap(); // b → v
        g.add_edge(0, 1, Plf::constant(5.0)).unwrap(); // s → a
        g.add_edge(1, 3, Plf::constant(5.0)).unwrap(); // a → v
        let fg = g.freeze();
        let want = profile_search_frozen(&g, &fg, 0);
        let (got, stats) = profile_search_frozen_corridor(&g, &fg, 0);
        assert_bit_identical_labels(&want, &got, "eps-tie");
        assert_eq!(
            stats.skipped, 0,
            "an epsilon-tie must never be corridor-skipped"
        );
        // Sanity: the rail is the cheaper path, and the tie is within EPS.
        let corridor = profile_corridor(&fg, 0);
        assert_eq!(corridor.hi[3], 10.0);
        assert!(td_plf::feq(10.0 + 5e-8, corridor.hi[3], td_plf::EPS_COST));
        // The tie's witness (via b = 2) won the envelope in both runs.
        assert_eq!(got.dist[3].as_ref().unwrap().eval_with_via(0.0).1, 2);
    }

    /// Value-level equality on the union probe grid — the exactness
    /// contract for corridor searches (representations may keep
    /// tolerance-equal but differently-anchored breakpoints).
    fn assert_value_identical(a: &Plf, b: &Plf, ctx: &str) {
        let mut ts: Vec<f64> = a.points().iter().chain(b.points()).map(|p| p.t).collect();
        ts.sort_unstable_by(f64::total_cmp);
        ts.dedup();
        let mut probes = vec![ts[0] - 1.0, ts[ts.len() - 1] + 1.0];
        probes.extend_from_slice(&ts);
        probes.extend(ts.windows(2).map(|w| 0.5 * (w[0] + w[1])));
        for &t in &probes {
            let (va, vb) = (a.eval(t), b.eval(t));
            assert!(
                (va - vb).abs() < EPS_COST,
                "{ctx}: value diverges at t={t}: {va} vs {vb}"
            );
        }
    }

    #[test]
    fn targeted_corridor_matches_unbounded_label_at_destination() {
        let g = fig1_subnetwork();
        let fg = g.freeze();
        for s in 0..4u32 {
            let want = profile_search_frozen(&g, &fg, s);
            for d in 0..4u32 {
                let (got, _) = profile_search_frozen_corridor_to(&g, &fg, s, d);
                match (&want.dist[d as usize], &got) {
                    (Some(a), Some(b)) => assert_value_identical(a, b, &format!("s={s} d={d}")),
                    (None, None) => {}
                    other => panic!("s={s} d={d}: reachability {:?}", other.0.is_some()),
                }
            }
        }
    }

    #[test]
    fn targeted_corridor_prunes_dead_end_branches() {
        // A branch reachable from s that cannot reach d at all: rev_lo is
        // INFINITY there, so the targeted search never compounds into it,
        // while the unbounded search dutifully labels the whole branch.
        // d's label is untouched by the branch in either run, so here even
        // bit-identity must hold.
        let mut g = TdGraph::with_vertices(6);
        g.add_edge(0, 1, Plf::constant(3.0)).unwrap();
        g.add_edge(1, 2, Plf::from_pairs(&[(0.0, 4.0), (40.0, 9.0)]).unwrap())
            .unwrap();
        g.add_edge(0, 3, Plf::constant(1.0)).unwrap(); // dead-end branch
        g.add_edge(3, 4, Plf::constant(1.0)).unwrap();
        g.add_edge(4, 5, Plf::constant(1.0)).unwrap();
        let fg = g.freeze();
        let want = profile_search_frozen(&g, &fg, 0);
        assert!(want.dist[5].is_some(), "unbounded labels the whole branch");
        let (got, stats) = profile_search_frozen_corridor_to(&g, &fg, 0, 2);
        assert_eq!(want.dist[2].as_ref(), got.as_ref(), "d-label must match");
        // One skip kills the whole branch: 0→3 is pruned, so 3, 4, 5 are
        // never visited — the subgraph dies at its first off-corridor edge.
        assert_eq!(
            stats.skipped, 1,
            "the dead-end branch must be pruned at its entry edge, got {stats:?}"
        );
        assert_eq!(stats.relaxed, 2, "only the s → 1 → d chain compounds");
    }

    #[test]
    fn targeted_corridor_never_drops_an_epsilon_tie() {
        // Same tie construction as the one-to-all regression: both 2-hop
        // paths sum to ub within EPS_COST, so the targeted win test must
        // keep both — fle tolerance, not strict comparison.
        let tie_leg = 5.0 + 5e-8;
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 2, Plf::constant(5.0)).unwrap();
        g.add_edge(2, 3, Plf::constant(tie_leg)).unwrap();
        g.add_edge(0, 1, Plf::constant(5.0)).unwrap();
        g.add_edge(1, 3, Plf::constant(5.0)).unwrap();
        let fg = g.freeze();
        let want = profile_search_frozen(&g, &fg, 0);
        let (got, stats) = profile_search_frozen_corridor_to(&g, &fg, 0, 3);
        assert_eq!(stats.skipped, 0, "an epsilon-tie must never be pruned");
        assert_eq!(want.dist[3].as_ref(), got.as_ref());
        assert_eq!(got.unwrap().eval_with_via(0.0).1, 2);
    }

    #[test]
    fn targeted_corridor_handles_unreachable_and_self() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        let fg = g.freeze();
        let (got, stats) = profile_search_frozen_corridor_to(&g, &fg, 0, 2);
        assert!(got.is_none(), "unreachable d must yield None");
        assert_eq!(stats, CorridorStats::default(), "no search was run");
        let (zero, _) = profile_search_frozen_corridor_to(&g, &fg, 0, 0);
        assert_eq!(zero.unwrap().eval(12.0), 0.0, "s == d is the zero profile");
    }
}
