//! Profile search: the *shortest travel cost function* query.
//!
//! Computes `f_{s,v}(t)` (Def. 2) for all `v` — the function the paper's
//! "cost function query" experiments (Fig. 8 b/d/f/h) return — by
//! label-correcting relaxation over whole PLFs:
//!
//! ```text
//! dist[s] = 0;   relax (u,v):  dist[v] ← min(dist[v], Compound(dist[u], w_{u,v}))
//! ```
//!
//! Terminates on FIFO graphs with strictly positive edge costs (every
//! improvement lowers the function value somewhere by a bounded amount). Used
//! as the correctness oracle for every index in the workspace, and as the
//! matrix builder inside TD-G-tree.

use crate::budget::QueryBudget;
use std::collections::VecDeque;
use td_graph::{FrozenGraph, Path, TdGraph, VertexId};
use td_plf::Plf;

/// Result of a profile search from a source vertex.
#[derive(Clone, Debug)]
pub struct ProfileResult {
    /// Source vertex.
    pub source: VertexId,
    /// `dist[v]` = shortest travel cost function `f_{s,v}(t)`; `None` when
    /// unreachable. `dist[s]` is the zero function.
    pub dist: Vec<Option<Plf>>,
}

impl ProfileResult {
    /// Cost to `d` departing at `t`.
    pub fn cost(&self, d: VertexId, t: f64) -> Option<f64> {
        self.dist[d as usize].as_ref().map(|f| f.eval(t))
    }

    /// Recovers the shortest path to `d` departing at `t` by walking witness
    /// (predecessor) annotations backwards.
    pub fn path(&self, d: VertexId, t: f64) -> Option<Path> {
        self.dist[d as usize].as_ref()?;
        let mut vertices = vec![d];
        let mut cur = d;
        let mut guard = 0usize;
        while cur != self.source {
            let f = self.dist[cur as usize].as_ref()?;
            let (_, via) = f.eval_with_via(t);
            debug_assert_ne!(via, td_plf::NO_VIA, "non-source vertex lacks predecessor");
            vertices.push(via);
            cur = via;
            guard += 1;
            if guard > self.dist.len() {
                return None; // corrupt witnesses; fail loudly in tests
            }
        }
        vertices.reverse();
        Some(Path::new(vertices))
    }
}

/// Profile search from `s` over the whole graph.
pub fn profile_search(g: &TdGraph, s: VertexId) -> ProfileResult {
    profile_search_impl(g, s, None)
}

/// [`profile_search`] over the frozen CSR/arena layout.
///
/// `fg` must be `g.freeze()` (same vertex/edge ids): adjacency walks and the
/// per-edge `min_cost` bounds come from the frozen arrays, while the function
/// algebra (compound/minimum) still runs on `g`'s owned [`Plf`]s. Tracks a
/// lower bound on each label's minimum and an upper bound on its maximum so
/// a relaxation is skipped — without touching any breakpoints — when
/// `min(dist[u]) + min_cost(e) ≥ max(dist[v])`, i.e. when the candidate can
/// never improve the existing label anywhere. On road networks this prunes
/// most re-relaxations of already-tight labels, which is where the
/// label-correcting search spends its time.
pub fn profile_search_frozen(g: &TdGraph, fg: &FrozenGraph, s: VertexId) -> ProfileResult {
    let (result, complete) = profile_search_frozen_bounded(g, fg, s, &QueryBudget::UNLIMITED);
    debug_assert!(complete, "unlimited budget cannot exhaust");
    result
}

/// [`profile_search_frozen`] under a [`QueryBudget`]: the settle cap counts
/// relaxation rounds (queue pops) and the deadline is checked on the same
/// stride as the scalar searches. Returns the labels plus a completeness
/// flag: when `false`, the search stopped early and every present label is
/// a pointwise *upper bound* on the true cost function (label-correcting
/// labels only ever decrease), while absent labels say nothing — exactly
/// the safe side for an anytime profile answer.
pub fn profile_search_frozen_bounded(
    g: &TdGraph,
    fg: &FrozenGraph,
    s: VertexId,
    budget: &QueryBudget,
) -> (ProfileResult, bool) {
    debug_assert_eq!(g.num_vertices(), fg.num_vertices());
    debug_assert_eq!(g.num_edges(), fg.num_edges());
    let n = g.num_vertices();
    let mut dist: Vec<Option<Plf>> = vec![None; n];
    // lab_min[v] ≤ min(dist[v]) and lab_max[v] ≥ max(dist[v]), maintained in
    // O(1) per relaxation from the arena's per-edge bounds — never by
    // scanning breakpoints: a compound's values lie within
    // [min f + min g, max f + max g], and a pointwise minimum's within
    // [min of mins, min of maxes].
    let mut lab_min = vec![f64::INFINITY; n];
    let mut lab_max = vec![f64::INFINITY; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    dist[s as usize] = Some(Plf::zero());
    lab_min[s as usize] = 0.0;
    lab_max[s as usize] = 0.0;
    queue.push_back(s);
    in_queue[s as usize] = true;

    let mut pops = 0usize;
    let pop_limit = 64 * n * n + 1024;
    while let Some(u) = queue.pop_front() {
        if budget.exhausted(pops as u64) {
            return (ProfileResult { source: s, dist }, false);
        }
        pops += 1;
        assert!(
            pops <= pop_limit,
            "profile search failed to converge after {pops} relaxation rounds — \
             the graph likely contains a (near-)zero-cost cycle"
        );
        in_queue[u as usize] = false;
        let du = dist[u as usize]
            .clone()
            .expect("queued vertices have labels");
        let du_min = lab_min[u as usize];
        let (heads, edges, mins) = fg.out_slices_with_min(u);
        for ((&v, &e), &emin) in heads.iter().zip(edges.iter()).zip(mins.iter()) {
            // Admissible prune: every value of the candidate compound is
            // ≥ min(du) + min(w_e); if that already clears the existing
            // label's maximum, the candidate is nowhere below it. The bound
            // streams in with the adjacency walk (no arena touch).
            if dist[v as usize].is_some() && du_min + emin >= lab_max[v as usize] {
                continue;
            }
            let cand = du.compound(g.weight(e), u);
            // Exact bounds, one fused pass over the points the compound just
            // wrote (still cache-hot). Exactness matters: the loose
            // sum-of-maxes bound degrades multiplicatively along paths and
            // stops the prune from ever firing on compound-heavy graphs.
            let (cand_min, cand_max) = cand.value_bounds();
            let improved = match &dist[v as usize] {
                None => true,
                Some(old) => {
                    let merged = old.minimum(&cand);
                    if merged.approx_eq(old, 1e-7) {
                        false
                    } else {
                        dist[v as usize] = Some(merged);
                        lab_min[v as usize] = lab_min[v as usize].min(cand_min);
                        lab_max[v as usize] = lab_max[v as usize].min(cand_max);
                        if !in_queue[v as usize] {
                            in_queue[v as usize] = true;
                            queue.push_back(v);
                        }
                        continue;
                    }
                }
            };
            if improved {
                dist[v as usize] = Some(cand);
                lab_min[v as usize] = cand_min;
                lab_max[v as usize] = cand_max;
                if !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    (ProfileResult { source: s, dist }, true)
}

/// Profile search from `s`, restricted to vertices for which `keep` returns
/// true (the search still *traverses* everything reachable; `keep` only
/// controls which functions are retained — memory matters on big graphs).
pub fn profile_search_to(
    g: &TdGraph,
    s: VertexId,
    keep: impl Fn(VertexId) -> bool,
) -> ProfileResult {
    let mut r = profile_search_impl(g, s, None);
    for v in 0..g.num_vertices() as u32 {
        if !keep(v) && v != s {
            r.dist[v as usize] = None;
        }
    }
    r
}

fn profile_search_impl(g: &TdGraph, s: VertexId, _reserved: Option<()>) -> ProfileResult {
    let n = g.num_vertices();
    let mut dist: Vec<Option<Plf>> = vec![None; n];
    let mut in_queue = vec![false; n];
    let mut queue: VecDeque<VertexId> = VecDeque::new();
    dist[s as usize] = Some(Plf::zero());
    queue.push_back(s);
    in_queue[s as usize] = true;

    // Termination guard: label-correcting converges on FIFO graphs with
    // strictly positive costs; a (near-)zero-cost cycle could otherwise churn
    // forever on ε-improvements. The bound is far above any converging run.
    let mut pops = 0usize;
    let pop_limit = 64 * n * n + 1024;
    while let Some(u) = queue.pop_front() {
        pops += 1;
        assert!(
            pops <= pop_limit,
            "profile search failed to converge after {pops} relaxation rounds — \
             the graph likely contains a (near-)zero-cost cycle"
        );
        in_queue[u as usize] = false;
        let du = dist[u as usize]
            .clone()
            .expect("queued vertices have labels");
        for &(v, e) in g.out_edges(u) {
            let cand = du.compound(g.weight(e), u);
            let improved = match &dist[v as usize] {
                None => true,
                Some(old) => {
                    // Improved iff cand is strictly below old somewhere.
                    let merged = old.minimum(&cand);
                    if merged.approx_eq(old, 1e-7) {
                        false
                    } else {
                        dist[v as usize] = Some(merged);
                        if !in_queue[v as usize] {
                            in_queue[v as usize] = true;
                            queue.push_back(v);
                        }
                        continue;
                    }
                }
            };
            if improved {
                dist[v as usize] = Some(cand);
                if !in_queue[v as usize] {
                    in_queue[v as usize] = true;
                    queue.push_back(v);
                }
            }
        }
    }
    ProfileResult { source: s, dist }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    fn fig1_subnetwork() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        let w12 = Plf::from_pairs(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]).unwrap();
        let w29 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]).unwrap();
        let w14 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 15.0), (60.0, 25.0)]).unwrap();
        let w49 = Plf::from_pairs(&[(0.0, 5.0), (60.0, 15.0)]).unwrap();
        g.add_edge(0, 1, w12).unwrap();
        g.add_edge(1, 3, w29).unwrap();
        g.add_edge(0, 2, w14).unwrap();
        g.add_edge(2, 3, w49).unwrap();
        g
    }

    #[test]
    fn profile_agrees_with_scalar_dijkstra() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        for t in [0.0, 5.0, 17.0, 29.0, 42.0, 60.0, 75.0] {
            for d in 1..4u32 {
                let want = crate::scalar::shortest_path_cost(&g, 0, d, t).unwrap();
                let got = prof.cost(d, t).unwrap();
                assert!(
                    (want - got).abs() < 1e-6,
                    "d={d} t={t}: scalar {want} vs profile {got}"
                );
            }
        }
    }

    #[test]
    fn example_2_2_min_of_two_compounds() {
        // f_{1,9} = min(Compound(w14, w49), Compound(w12, w29)) per Example 2.2.
        let g = fig1_subnetwork();
        let w12 = g.weight(g.find_edge(0, 1).unwrap()).clone();
        let w29 = g.weight(g.find_edge(1, 3).unwrap()).clone();
        let w14 = g.weight(g.find_edge(0, 2).unwrap()).clone();
        let w49 = g.weight(g.find_edge(2, 3).unwrap()).clone();
        let want = w14.compound(&w49, 2).minimum(&w12.compound(&w29, 1));
        let got = profile_search(&g, 0).dist[3].clone().unwrap();
        assert!(got.approx_eq(&want, 1e-6), "got={got:?}\nwant={want:?}");
    }

    #[test]
    fn witnesses_recover_the_switching_path() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        // Early: via v4 (id 2). Late: via v2 (id 1) — Example 2.3.
        assert_eq!(prof.path(3, 0.0).unwrap().vertices, vec![0, 2, 3]);
        assert_eq!(prof.path(3, 60.0).unwrap().vertices, vec![0, 1, 3]);
    }

    #[test]
    fn recovered_paths_replay_to_reported_cost() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        for t in [0.0, 10.0, 30.0, 50.0, 70.0] {
            let p = prof.path(3, t).unwrap();
            let c = prof.cost(3, t).unwrap();
            assert!((p.cost(&g, t).unwrap() - c).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    fn frozen_profile_matches_vec_layout() {
        let g = fig1_subnetwork();
        let fg = g.freeze();
        for s in 0..4u32 {
            let want = profile_search(&g, s);
            let got = profile_search_frozen(&g, &fg, s);
            for d in 0..4u32 {
                match (&want.dist[d as usize], &got.dist[d as usize]) {
                    (Some(a), Some(b)) => {
                        for t in [0.0, 10.0, 25.0, 40.0, 60.0, 80.0] {
                            assert!((a.eval(t) - b.eval(t)).abs() < 1e-9, "s={s} d={d} t={t}");
                        }
                    }
                    (None, None) => {}
                    other => panic!("s={s} d={d}: {:?}", other.1.as_ref().map(|_| ())),
                }
            }
        }
    }

    #[test]
    fn unreachable_vertices_have_no_label() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        let prof = profile_search(&g, 0);
        assert!(prof.dist[2].is_none());
        assert!(prof.cost(2, 0.0).is_none());
        assert!(prof.path(2, 0.0).is_none());
    }

    #[test]
    fn keep_filter_drops_labels() {
        let g = fig1_subnetwork();
        let prof = profile_search_to(&g, 0, |v| v == 3);
        assert!(prof.dist[1].is_none());
        assert!(prof.dist[2].is_none());
        assert!(prof.dist[3].is_some());
        assert!(prof.dist[0].is_some()); // source always kept
    }

    #[test]
    fn source_label_is_zero() {
        let g = fig1_subnetwork();
        let prof = profile_search(&g, 0);
        assert_eq!(prof.cost(0, 33.0), Some(0.0));
    }
}
