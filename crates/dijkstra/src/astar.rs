//! Time-dependent A\* with static lower-bound potentials.
//!
//! The potential `h(v)` is the static shortest distance from `v` to the
//! destination where every edge is weighted by the *minimum* of its cost
//! function over the day. Since `w_{u,v}(t) ≥ min_t w_{u,v}(t)` for all `t`,
//! the potential is admissible and consistent, so A\* with it is correct on
//! FIFO graphs — this is the "speed patterns" lower-bounding idea of \[15\].

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use td_graph::{TdGraph, VertexId};

/// Reusable backward lower bounds to a fixed destination.
#[derive(Clone, Debug)]
pub struct LowerBounds {
    /// `h[v]` = static min-cost distance from `v` to the destination.
    pub h: Vec<f64>,
    /// The destination these bounds point at.
    pub destination: VertexId,
}

impl LowerBounds {
    /// Backward Dijkstra from `d` over `min_value()` edge weights.
    pub fn new(g: &TdGraph, d: VertexId) -> Self {
        let n = g.num_vertices();
        let mut h = vec![f64::INFINITY; n];
        let mut done = vec![false; n];
        let mut heap = BinaryHeap::new();
        h[d as usize] = 0.0;
        heap.push(Entry {
            key: 0.0,
            vertex: d,
        });
        while let Some(Entry { key, vertex: u }) = heap.pop() {
            if done[u as usize] {
                continue;
            }
            done[u as usize] = true;
            for &(p, e) in g.in_edges(u) {
                if done[p as usize] {
                    continue;
                }
                let cand = key + g.weight(e).min_value();
                if cand < h[p as usize] {
                    h[p as usize] = cand;
                    heap.push(Entry {
                        key: cand,
                        vertex: p,
                    });
                }
            }
        }
        LowerBounds { h, destination: d }
    }
}

#[derive(Copy, Clone)]
struct Entry {
    key: f64,
    vertex: VertexId,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.vertex == other.vertex
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .key
            .partial_cmp(&self.key)
            .expect("keys are finite")
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// A\* travel cost `s → d` departing at `t` with precomputed bounds
/// (`bounds.destination` must equal `d`).
pub fn astar_cost_with(
    g: &TdGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
    bounds: &LowerBounds,
) -> Option<f64> {
    assert_eq!(
        bounds.destination, d,
        "bounds computed for a different target"
    );
    let n = g.num_vertices();
    let mut settled = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    if bounds.h[s as usize].is_infinite() {
        return None;
    }
    best[s as usize] = t;
    heap.push(Entry {
        key: t + bounds.h[s as usize],
        vertex: s,
    });
    while let Some(Entry { key: _, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        let arr = best[u as usize];
        if u == d {
            return Some(arr - t);
        }
        for &(v, e) in g.out_edges(u) {
            if settled[v as usize] || bounds.h[v as usize].is_infinite() {
                continue;
            }
            let cand = arr + g.weight(e).eval(arr);
            if cand < best[v as usize] {
                best[v as usize] = cand;
                heap.push(Entry {
                    key: cand + bounds.h[v as usize],
                    vertex: v,
                });
            }
        }
    }
    None
}

/// One-shot A\*: computes bounds then searches.
pub fn astar_cost(g: &TdGraph, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
    let bounds = LowerBounds::new(g, d);
    astar_cost_with(g, s, d, t, &bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::shortest_path_cost;
    use td_plf::Plf;

    fn diamond() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::from_pairs(&[(0.0, 10.0), (50.0, 30.0)]).unwrap())
            .unwrap();
        g.add_edge(0, 2, Plf::constant(12.0)).unwrap();
        g.add_edge(1, 3, Plf::constant(5.0)).unwrap();
        g.add_edge(2, 3, Plf::from_pairs(&[(0.0, 20.0), (50.0, 2.0)]).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn astar_matches_dijkstra() {
        let g = diamond();
        for t in [0.0, 10.0, 25.0, 50.0, 80.0] {
            let want = shortest_path_cost(&g, 0, 3, t);
            let got = astar_cost(&g, 0, 3, t);
            match (want, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}"),
                (a, b) => panic!("mismatch at t={t}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn lower_bounds_are_admissible() {
        let g = diamond();
        let lb = LowerBounds::new(&g, 3);
        for v in 0..4u32 {
            for t in [0.0, 25.0, 50.0] {
                if let Some(c) = shortest_path_cost(&g, v, 3, t) {
                    assert!(
                        lb.h[v as usize] <= c + 1e-9,
                        "h[{v}]={} exceeds true cost {c} at t={t}",
                        lb.h[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        assert_eq!(astar_cost(&g, 0, 2, 0.0), None);
        assert_eq!(astar_cost(&g, 2, 0, 0.0), None);
    }

    #[test]
    fn reusable_bounds_serve_many_sources() {
        let g = diamond();
        let lb = LowerBounds::new(&g, 3);
        for s in 0..3u32 {
            let want = shortest_path_cost(&g, s, 3, 20.0).unwrap();
            let got = astar_cost_with(&g, s, 3, 20.0, &lb).unwrap();
            assert!((want - got).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "different target")]
    fn wrong_bounds_panic() {
        let g = diamond();
        let lb = LowerBounds::new(&g, 2);
        let _ = astar_cost_with(&g, 0, 3, 0.0, &lb);
    }
}
