// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Time-dependent A\* with static lower-bound potentials.
//!
//! The potential `h(v)` is the static shortest distance from `v` to the
//! destination where every edge is weighted by the *minimum* of its cost
//! function over the day. Since `w_{u,v}(t) ≥ min_t w_{u,v}(t)` for all `t`,
//! the potential is admissible and consistent, so A\* with it is correct on
//! FIFO graphs — this is the "speed patterns" lower-bounding idea of \[15\].
//!
//! Two layers live here:
//!
//! * the legacy [`TdGraph`] entry points ([`LowerBounds`], [`astar_cost`])
//!   — simple, allocation-heavy reference implementations kept as the A/B
//!   baseline and for doc-sized examples;
//! * the frozen hot path ([`astar_cost_frozen_with`] /
//!   [`astar_path_frozen_with`]): CSR adjacency walks with per-edge
//!   `min_cost` pruning, generation-stamped scratch ([`AStarScratch`], 0
//!   allocations per query once warmed), generic over any
//!   [`crate::Potential`] — plug in the lazy
//!   [`crate::ChPotential`] to get the fast exact query path, or
//!   [`crate::FullPotential`] for the full-backward-Dijkstra baseline.

use crate::budget::{BoundedCost, FrozenOutcome, QueryBudget};
use crate::potential::Potential;
use crate::scalar::RELAX_CHUNK;
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use td_graph::{FrozenGraph, Path, TdGraph, VertexId};
use td_obs::SearchStats;
use td_plf::eval_ids_at;

/// Reusable backward lower bounds to a fixed destination.
#[derive(Clone, Debug)]
pub struct LowerBounds {
    /// `h[v]` = static min-cost distance from `v` to the destination.
    pub h: Vec<f64>,
    /// The destination these bounds point at.
    pub destination: VertexId,
}

/// Reusable state for [`LowerBounds::recompute`]: the heap and the
/// generation-stamped done marks survive across destinations, so re-anchoring
/// the legacy potential stops allocating per call.
#[derive(Clone, Debug, Default)]
pub struct LowerBoundsScratch {
    done_gen: Vec<u32>,
    gen: u32,
    heap: BinaryHeap<Entry>,
}

impl LowerBounds {
    /// Backward Dijkstra from `d` over `min_value()` edge weights.
    pub fn new(g: &TdGraph, d: VertexId) -> Self {
        let mut bounds = LowerBounds {
            h: Vec::new(),
            destination: d,
        };
        bounds.recompute(&mut LowerBoundsScratch::default(), g, d);
        bounds
    }

    /// Re-anchors these bounds at `d`, reusing this value's `h` buffer and
    /// `scratch`'s heap + visited marks (no allocations once warmed).
    pub fn recompute(&mut self, scratch: &mut LowerBoundsScratch, g: &TdGraph, d: VertexId) {
        let n = g.num_vertices();
        self.h.clear();
        self.h.resize(n, f64::INFINITY);
        self.destination = d;
        if scratch.done_gen.len() != n {
            scratch.done_gen = vec![0; n];
            scratch.gen = 0;
        }
        let gen = crate::potential::bump_generation(&mut scratch.gen, &mut scratch.done_gen);
        scratch.heap.clear();
        self.h[d as usize] = 0.0;
        scratch.heap.push(Entry {
            key: 0.0,
            vertex: d,
        });
        while let Some(Entry { key, vertex: u }) = scratch.heap.pop() {
            if scratch.done_gen[u as usize] == gen {
                continue;
            }
            scratch.done_gen[u as usize] = gen;
            for &(p, e) in g.in_edges(u) {
                if scratch.done_gen[p as usize] == gen {
                    continue;
                }
                let cand = key + g.weight(e).min_value();
                if cand < self.h[p as usize] {
                    self.h[p as usize] = cand;
                    scratch.heap.push(Entry {
                        key: cand,
                        vertex: p,
                    });
                }
            }
        }
    }
}

/// Shared min-heap entry of every scalar search in this crate, ordered by
/// smallest key first (ties broken by vertex id for determinism).
#[derive(Copy, Clone, Debug)]
pub(crate) struct Entry {
    pub(crate) key: f64,
    pub(crate) vertex: VertexId,
}
impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.vertex == other.vertex
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // `total_cmp` keeps the comparison panic-free: keys are finite by
        // construction, and a NaN would order deterministically rather than
        // abort the query mid-search.
        other
            .key
            .total_cmp(&self.key)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// A\* travel cost `s → d` departing at `t` with precomputed bounds
/// (`bounds.destination` must equal `d`).
pub fn astar_cost_with(
    g: &TdGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
    bounds: &LowerBounds,
) -> Option<f64> {
    // td-lint: allow(assert-policy) public precondition with a should_panic test; legacy path, not hot
    assert_eq!(
        bounds.destination, d,
        "bounds computed for a different target"
    );
    let n = g.num_vertices();
    let mut settled = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    if bounds.h[s as usize].is_infinite() {
        return None;
    }
    best[s as usize] = t;
    heap.push(Entry {
        key: t + bounds.h[s as usize],
        vertex: s,
    });
    while let Some(Entry { key: _, vertex: u }) = heap.pop() {
        if settled[u as usize] {
            continue;
        }
        settled[u as usize] = true;
        let arr = best[u as usize];
        if u == d {
            return Some(arr - t);
        }
        for &(v, e) in g.out_edges(u) {
            if settled[v as usize] || bounds.h[v as usize].is_infinite() {
                continue;
            }
            let cand = arr + g.weight(e).eval(arr);
            if cand < best[v as usize] {
                best[v as usize] = cand;
                heap.push(Entry {
                    key: cand + bounds.h[v as usize],
                    vertex: v,
                });
            }
        }
    }
    None
}

/// One-shot A\*: computes bounds then searches.
pub fn astar_cost(g: &TdGraph, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
    let bounds = LowerBounds::new(g, d);
    astar_cost_with(g, s, d, t, &bounds)
}

// ----------------------------------------------------------------------
// Frozen hot path
// ----------------------------------------------------------------------

/// Reusable forward-search state of the frozen A\*: arrival/parent arrays
/// are generation-stamped (no O(n) clear per query) and the heap is
/// recycled — zero allocations per query once warmed to the graph's size.
#[derive(Clone, Debug, Default)]
pub struct AStarScratch {
    pub(crate) best: Vec<f64>,
    pub(crate) parent: Vec<VertexId>,
    /// 2·id stamps "reached this query", 2·id+1 stamps "settled".
    pub(crate) stamp: Vec<u32>,
    gen: u32,
    pub(crate) heap: BinaryHeap<Entry>,
    /// Counters for the most recent frozen run, reset at query start (plain
    /// `u64`s — the hot loop records without touching shared state).
    pub stats: SearchStats,
}

impl AStarScratch {
    /// Restores a logically fresh state after a contained panic while
    /// keeping every warmed allocation. The arrays may hold torn values
    /// from the unwound query, but all reads are gated by the stamp array:
    /// zeroing the stamps and restarting the generation makes every stale
    /// entry unreachable, exactly as the wrap-around path of `reset` does.
    /// Capacity — the workload's true high-water mark — survives, so the
    /// first batch after a panic allocates nothing extra.
    pub fn sanitize(&mut self) {
        self.heap.clear();
        self.stamp.fill(0);
        self.gen = 0;
        self.stats.reset();
    }

    // td-lint: hot
    pub(crate) fn reset(&mut self, n: usize) -> u32 {
        debug_assert!(n < u32::MAX as usize, "vertex ids must fit in u32");
        if self.best.len() != n {
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.best = vec![f64::INFINITY; n];
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.parent = vec![u32::MAX; n];
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.stamp = vec![0; n];
            self.gen = 0;
        }
        self.heap.clear();
        self.stats.reset();
        // Two stamp values per query: gen (reached) and gen+1 (settled).
        // On wrap-around the stamps are cleared wholesale, as in
        // `crate::potential::bump_generation` (which steps by 1, not 2).
        self.gen = if self.gen >= u32::MAX - 2 {
            self.stamp.fill(0);
            1
        } else {
            self.gen + 2
        };
        self.gen
    }
}

/// A\* travel cost `s → d` departing at `t` on the frozen layout, ordered
/// by `arrival + h` for the given [`Potential`] (initialised here). Exact
/// for admissible, consistent potentials; relaxations are pruned by the
/// interleaved per-edge `min_cost` bounds both against the head's tentative
/// arrival and — potential-strengthened — against the best known arrival
/// at `d`.
pub fn astar_cost_frozen_with<P: Potential>(
    scratch: &mut AStarScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<f64> {
    match run_frozen(scratch, fg, pot, s, d, t, &QueryBudget::UNLIMITED) {
        FrozenOutcome::Reached(arr) => Some(arr - t),
        // An unlimited budget never exhausts.
        FrozenOutcome::Unreachable | FrozenOutcome::Exhausted { .. } => None,
    }
}

/// [`astar_cost_frozen_with`] under a [`QueryBudget`]: the identical search
/// (bit-identical float operations when it completes), stopping at the
/// budget's checkpoints. On exhaustion the frontier's minimum `arrival + h`
/// key is an admissible lower bound on the destination's arrival (for a
/// consistent potential with `h(d) = 0` — exactly what [`crate::ChPotential`]
/// and [`crate::FullPotential`] provide), and the tentative target label
/// (if a path was found) an upper bound.
// td-lint: hot
pub fn astar_cost_frozen_bounded_with<P: Potential>(
    scratch: &mut AStarScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
    budget: &QueryBudget,
) -> BoundedCost {
    match run_frozen(scratch, fg, pot, s, d, t, budget) {
        FrozenOutcome::Reached(arr) => BoundedCost::Exact(Some(arr - t)),
        FrozenOutcome::Unreachable => BoundedCost::Exact(None),
        FrozenOutcome::Exhausted {
            frontier_key,
            target_best,
        } => BoundedCost::exhausted_from_arrivals(frontier_key, target_best, t),
    }
}

/// [`astar_cost_frozen_with`] also reconstructing the path (the returned
/// [`Path`] allocates — it is the result).
pub fn astar_path_frozen_with<P: Potential>(
    scratch: &mut AStarScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<(f64, Path)> {
    let arr = match run_frozen(scratch, fg, pot, s, d, t, &QueryBudget::UNLIMITED) {
        FrozenOutcome::Reached(arr) => arr,
        FrozenOutcome::Unreachable | FrozenOutcome::Exhausted { .. } => return None,
    };
    let mut vertices = vec![d];
    let mut cur = d;
    while cur != s {
        let p = scratch.parent[cur as usize];
        debug_assert_ne!(p, u32::MAX, "settled vertex must have a parent");
        vertices.push(p);
        cur = p;
    }
    vertices.reverse();
    Some((arr - t, Path::new(vertices)))
}

/// The shared forward search; returns the arrival time at `d`.
// td-lint: hot
fn run_frozen<P: Potential>(
    scratch: &mut AStarScratch,
    fg: &FrozenGraph,
    pot: &mut P,
    s: VertexId,
    d: VertexId,
    t: f64,
    budget: &QueryBudget,
) -> FrozenOutcome {
    if s == d {
        // Arrival = departure; skip the potential setup entirely (but drop
        // the previous query's counters so a later export sees this query).
        scratch.stats.reset();
        return FrozenOutcome::Reached(t);
    }
    debug_assert!((s as usize) < fg.num_vertices() && (d as usize) < fg.num_vertices());
    let gen = scratch.reset(fg.num_vertices());
    pot.init(d, t);
    let hs = pot.h(s);
    if hs.is_infinite() {
        return FrozenOutcome::Unreachable;
    }
    scratch.best[s as usize] = t;
    scratch.parent[s as usize] = u32::MAX;
    scratch.stamp[s as usize] = gen;
    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
    scratch.heap.push(Entry {
        key: t + hs,
        vertex: s,
    });
    // Best known (tentative) arrival at d: since h(d) = 0 and h is
    // admissible, no relaxation whose optimistic arrival `a + min + h(v)`
    // reaches it can improve the answer.
    let mut target_best = f64::INFINITY;
    let mut settles: u64 = 0;
    while let Some(Entry { key, vertex: u }) = scratch.heap.pop() {
        if scratch.stamp[u as usize] == gen + 1 {
            continue; // already settled; stale heap entry
        }
        // Budget checkpoint. Settling the destination itself is always
        // free — it finishes the query without relaxing a single edge.
        if u != d && budget.exhausted(settles) {
            return FrozenOutcome::Exhausted {
                frontier_key: key,
                target_best,
            };
        }
        settles += 1;
        scratch.stats.settle(1);
        scratch.stamp[u as usize] = gen + 1;
        let a = scratch.best[u as usize];
        if u == d {
            return FrozenOutcome::Reached(a);
        }
        let (heads, edges, mins) = fg.out_slices_with_min(u);
        // Batched relaxation (same shape as `scalar::run_frozen`): per
        // chunk, min-bound + potential prunes gather the surviving edges,
        // one `eval_ids_at` arena pass produces their costs at `a`, then the
        // label updates run in edge order against the freshest `best`.
        let deg = heads.len();
        let mut ids = [0u32; RELAX_CHUNK];
        let mut slots = [0u32; RELAX_CHUNK];
        let mut hvs = [0.0f64; RELAX_CHUNK];
        let mut vals = [0.0f64; RELAX_CHUNK];
        let mut base = 0usize;
        while base < deg {
            let stop = (base + RELAX_CHUNK).min(deg);
            let mut m = 0usize;
            for idx in base..stop {
                // debug_assert-documented indexing: the three out-slices
                // share one length, and idx < stop ≤ deg.
                debug_assert!(idx < heads.len() && idx < edges.len() && idx < mins.len());
                let v = heads[idx];
                if scratch.stamp[v as usize] == gen + 1 {
                    continue;
                }
                // Min-bound prune before touching breakpoints or the
                // potential: the true candidate is ≥ a + min_cost(e).
                let lb = a + mins[idx];
                let known = if scratch.stamp[v as usize] >= gen {
                    scratch.best[v as usize]
                } else {
                    f64::INFINITY
                };
                if lb >= known || lb >= target_best {
                    scratch.stats.prune(1);
                    continue;
                }
                let hv = pot.h(v);
                if hv.is_infinite() || lb + hv >= target_best {
                    scratch.stats.prune(1);
                    continue;
                }
                // debug_assert-documented indexing: m ≤ idx - base < RELAX_CHUNK.
                debug_assert!(m < RELAX_CHUNK);
                ids[m] = edges[idx];
                slots[m] = idx as u32;
                hvs[m] = hv;
                m += 1;
            }
            eval_ids_at(&fg.weights, &ids[..m], a, &mut vals[..m]);
            scratch.stats.relax((stop - base) as u64);
            scratch.stats.eval_batched(m as u64);
            for j in 0..m {
                // debug_assert-documented indexing: j < m ≤ RELAX_CHUNK, and
                // slots[j] was written from an in-range idx above.
                debug_assert!(j < slots.len() && j < vals.len() && j < hvs.len());
                let idx = slots[j] as usize;
                debug_assert!(idx < heads.len());
                let v = heads[idx];
                let cand = a + vals[j];
                let known = if scratch.stamp[v as usize] >= gen {
                    scratch.best[v as usize]
                } else {
                    f64::INFINITY
                };
                if cand < known {
                    scratch.best[v as usize] = cand;
                    scratch.parent[v as usize] = u;
                    scratch.stamp[v as usize] = gen;
                    if v == d {
                        target_best = cand;
                    }
                    scratch.stats.heap_push(1);
                    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
                    scratch.heap.push(Entry {
                        key: cand + hvs[j],
                        vertex: v,
                    });
                }
            }
            base = stop;
        }
    }
    FrozenOutcome::Unreachable
}

// Compile-time pin: per-worker scratch moves to its thread.
const _: () = {
    const fn moves_to_worker<T: Send>() {}
    moves_to_worker::<AStarScratch>();
    moves_to_worker::<crate::potential::ChPotentialScratch>();
    moves_to_worker::<crate::potential::FullPotentialScratch>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::potential::{ChPotential, ChPotentialScratch, FullPotential, FullPotentialScratch};
    use crate::scalar::{shortest_path_cost, shortest_path_cost_frozen_with, DijkstraScratch};
    use td_ch::ContractionHierarchy;
    use td_plf::Plf;

    fn diamond() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        g.add_edge(0, 1, Plf::from_pairs(&[(0.0, 10.0), (50.0, 30.0)]).unwrap())
            .unwrap();
        g.add_edge(0, 2, Plf::constant(12.0)).unwrap();
        g.add_edge(1, 3, Plf::constant(5.0)).unwrap();
        g.add_edge(2, 3, Plf::from_pairs(&[(0.0, 20.0), (50.0, 2.0)]).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn astar_matches_dijkstra() {
        let g = diamond();
        for t in [0.0, 10.0, 25.0, 50.0, 80.0] {
            let want = shortest_path_cost(&g, 0, 3, t);
            let got = astar_cost(&g, 0, 3, t);
            match (want, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-9, "t={t}: {a} vs {b}"),
                (a, b) => panic!("mismatch at t={t}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn frozen_astar_matches_dijkstra_with_both_potentials() {
        let g = diamond();
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut dj = DijkstraScratch::default();
        let mut astar_sc = AStarScratch::default();
        let mut full_sc = FullPotentialScratch::default();
        let mut ch_sc = ChPotentialScratch::default();
        for t in [0.0, 10.0, 25.0, 50.0, 80.0] {
            for s in 0..4u32 {
                for d in 0..4u32 {
                    let want = shortest_path_cost_frozen_with(&mut dj, &fg, s, d, t);
                    let mut full = FullPotential::new(&fg, &mut full_sc);
                    let got_full = astar_cost_frozen_with(&mut astar_sc, &fg, &mut full, s, d, t);
                    let mut lazy = ChPotential::new(&ch, &mut ch_sc);
                    let got_ch = astar_cost_frozen_with(&mut astar_sc, &fg, &mut lazy, s, d, t);
                    assert_eq!(
                        want.map(f64::to_bits),
                        got_full.map(f64::to_bits),
                        "full s={s} d={d} t={t}"
                    );
                    assert_eq!(
                        want.map(f64::to_bits),
                        got_ch.map(f64::to_bits),
                        "ch s={s} d={d} t={t}"
                    );
                }
            }
        }
    }

    #[test]
    fn frozen_astar_path_replays() {
        let g = diamond();
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut astar_sc = AStarScratch::default();
        let mut ch_sc = ChPotentialScratch::default();
        for t in [0.0, 25.0, 60.0] {
            let mut pot = ChPotential::new(&ch, &mut ch_sc);
            let (cost, path) =
                astar_path_frozen_with(&mut astar_sc, &fg, &mut pot, 0, 3, t).unwrap();
            assert_eq!(path.source(), 0);
            assert_eq!(path.destination(), 3);
            assert!(path.is_valid(&g));
            let replay = path.cost(&g, t).unwrap();
            assert!((cost - replay).abs() < 1e-9, "t={t}: {cost} vs {replay}");
        }
    }

    #[test]
    fn lower_bounds_are_admissible() {
        let g = diamond();
        let lb = LowerBounds::new(&g, 3);
        for v in 0..4u32 {
            for t in [0.0, 25.0, 50.0] {
                if let Some(c) = shortest_path_cost(&g, v, 3, t) {
                    assert!(
                        lb.h[v as usize] <= c + 1e-9,
                        "h[{v}]={} exceeds true cost {c} at t={t}",
                        lb.h[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn recompute_reuses_buffers_across_destinations() {
        let g = diamond();
        let mut scratch = LowerBoundsScratch::default();
        let mut lb = LowerBounds::new(&g, 3);
        for d in [2u32, 0, 3, 1, 3] {
            lb.recompute(&mut scratch, &g, d);
            let fresh = LowerBounds::new(&g, d);
            assert_eq!(lb.destination, d);
            for v in 0..4 {
                assert_eq!(lb.h[v].to_bits(), fresh.h[v].to_bits(), "d={d} v={v}");
            }
        }
    }

    #[test]
    fn unreachable_is_none() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        assert_eq!(astar_cost(&g, 0, 2, 0.0), None);
        assert_eq!(astar_cost(&g, 2, 0, 0.0), None);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut sc = AStarScratch::default();
        let mut pot_sc = ChPotentialScratch::default();
        let mut pot = ChPotential::new(&ch, &mut pot_sc);
        assert_eq!(
            astar_cost_frozen_with(&mut sc, &fg, &mut pot, 0, 2, 0.0),
            None
        );
        let mut pot = ChPotential::new(&ch, &mut pot_sc);
        assert_eq!(
            astar_cost_frozen_with(&mut sc, &fg, &mut pot, 2, 0, 0.0),
            None
        );
        let mut pot = ChPotential::new(&ch, &mut pot_sc);
        assert_eq!(
            astar_cost_frozen_with(&mut sc, &fg, &mut pot, 1, 1, 9.0),
            Some(0.0)
        );
    }

    #[test]
    fn reusable_bounds_serve_many_sources() {
        let g = diamond();
        let lb = LowerBounds::new(&g, 3);
        for s in 0..3u32 {
            let want = shortest_path_cost(&g, s, 3, 20.0).unwrap();
            let got = astar_cost_with(&g, s, 3, 20.0, &lb).unwrap();
            assert!((want - got).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "different target")]
    fn wrong_bounds_panic() {
        let g = diamond();
        let lb = LowerBounds::new(&g, 2);
        let _ = astar_cost_with(&g, 0, 3, 0.0, &lb);
    }
}
