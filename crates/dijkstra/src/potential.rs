// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! A\* potentials: admissible, consistent lower bounds on the remaining
//! time-dependent cost to a fixed destination.
//!
//! Both implementations bound via the *scalar min-cost graph* (every edge
//! weighted by `min_t w_e(t)`), whose exact distances to `d` are admissible
//! (`w_e(t) ≥ min_t w_e(t)`) and consistent (`h(u) ≤ w_min(u,v) + h(v)` is
//! the triangle inequality of a true distance), so A\* keyed by
//! `arrival + h` is correct on FIFO graphs:
//!
//! * [`FullPotential`] — the legacy baseline: one **full** backward Dijkstra
//!   over the reverse min-cost graph per destination. O(n log n) per query
//!   before the forward search even starts, but with reusable
//!   generation-stamped scratch it no longer allocates per query.
//! * [`ChPotential`] — the fast path: one backward *upward* search in a
//!   prebuilt [`ContractionHierarchy`] (settling only the destination's
//!   upward cone — typically a small fraction of the graph), then `h(v)`
//!   resolved lazily and memoized per vertex the forward search actually
//!   touches. This is the CH-Potentials scheme of Strasser, Wagner & Zeitz.

use std::collections::BinaryHeap;
use td_ch::ContractionHierarchy;
use td_graph::{FrozenGraph, VertexId};

use crate::astar::Entry;

/// A destination-anchored lower bound `h(v)` on the remaining TD cost
/// `v → d` for searches departing no earlier than `t`, with `h(d) = 0` and
/// `f64::INFINITY` when `d` is unreachable from `v`.
///
/// Implementations must be **admissible** (`h(v) ≤` every TD cost `v → d`
/// entered at any time `≥ t` — FIFO arrival times along a search never
/// precede the departure) and **consistent**
/// (`h(u) ≤ min_{τ ≥ t} w_{u,v}(τ) + h(v)` for every edge); both
/// properties are proptested in `tests/proptest_astar_ch.rs`.
pub trait Potential {
    /// Re-anchors the potential at destination `d` for a query departing
    /// at `t`. Called once per query by the A\* entry points.
    fn init(&mut self, d: VertexId, t: f64);

    /// The lower bound for `v`. `&mut` because lazy implementations resolve
    /// and memoize on first access.
    fn h(&mut self, v: VertexId) -> f64;
}

/// Steps a shared generation counter, clearing the stamp array wholesale on
/// wrap-around so stale stamps can never collide with a live generation.
/// Every gen-stamped scratch in this crate routes through this (the A\*
/// scratch steps by 2 and keeps its own variant, documented there).
pub(crate) fn bump_generation(gen: &mut u32, stamps: &mut [u32]) -> u32 {
    *gen = if *gen == u32::MAX {
        stamps.fill(0);
        1
    } else {
        *gen + 1
    };
    *gen
}

// ----------------------------------------------------------------------
// Full backward Dijkstra (legacy baseline)
// ----------------------------------------------------------------------

/// Reusable state of the full-backward-Dijkstra potential: distance array,
/// generation stamps (replacing the per-query `vec![false; n]` visited
/// marks) and the heap survive across queries, so re-anchoring allocates
/// nothing once warmed.
#[derive(Clone, Debug, Default)]
pub struct FullPotentialScratch {
    h: Vec<f64>,
    h_gen: Vec<u32>,
    gen: u32,
    heap: BinaryHeap<Entry>,
}

impl FullPotentialScratch {
    // td-lint: hot
    fn reset(&mut self, n: usize) -> u32 {
        if self.h.len() != n {
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.h = vec![f64::INFINITY; n];
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.h_gen = vec![0; n];
            self.gen = 0;
        }
        self.heap.clear();
        bump_generation(&mut self.gen, &mut self.h_gen)
    }
}

/// The legacy A/B baseline: exact whole-day-min-graph distances to `d` by
/// one full backward Dijkstra over the frozen reverse adjacency at `init`
/// (the departure time is ignored — this is the classic loose bound); `h`
/// is then an O(1) lookup.
pub struct FullPotential<'a> {
    fg: &'a FrozenGraph,
    scratch: &'a mut FullPotentialScratch,
}

impl<'a> FullPotential<'a> {
    /// Binds the graph to (reusable) scratch.
    pub fn new(fg: &'a FrozenGraph, scratch: &'a mut FullPotentialScratch) -> Self {
        FullPotential { fg, scratch }
    }
}

impl Potential for FullPotential<'_> {
    // td-lint: hot
    fn init(&mut self, d: VertexId, _t: f64) {
        debug_assert!((d as usize) < self.fg.num_vertices());
        let sc = &mut *self.scratch;
        let gen = sc.reset(self.fg.num_vertices());
        sc.h[d as usize] = 0.0;
        sc.h_gen[d as usize] = gen;
        // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
        sc.heap.push(Entry {
            key: 0.0,
            vertex: d,
        });
        while let Some(Entry { key, vertex: u }) = sc.heap.pop() {
            if key > sc.h[u as usize] {
                continue; // stale
            }
            let (tails, edges) = self.fg.csr.in_slices(u);
            for (&p, &e) in tails.iter().zip(edges.iter()) {
                let cand = key + self.fg.min_cost(e);
                let known = if sc.h_gen[p as usize] == gen {
                    sc.h[p as usize]
                } else {
                    f64::INFINITY
                };
                if cand < known {
                    sc.h[p as usize] = cand;
                    sc.h_gen[p as usize] = gen;
                    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
                    sc.heap.push(Entry {
                        key: cand,
                        vertex: p,
                    });
                }
            }
        }
    }

    #[inline]
    // td-lint: hot
    fn h(&mut self, v: VertexId) -> f64 {
        debug_assert!((v as usize) < self.scratch.h_gen.len());
        if self.scratch.h_gen[v as usize] == self.scratch.gen {
            self.scratch.h[v as usize]
        } else {
            f64::INFINITY
        }
    }
}

// ----------------------------------------------------------------------
// Lazy CH potential (the fast path)
// ----------------------------------------------------------------------

/// Reusable state of the lazy CH potential: the backward-upward distance
/// array, the memoized potentials, both generation-stamped, plus the heap
/// and the resolution stack. Zero allocations per query once warmed.
#[derive(Clone, Debug, Default)]
pub struct ChPotentialScratch {
    /// `b[v]` = distance `v → d` in the downward graph (set for vertices
    /// settled by the backward-upward search).
    b: Vec<f64>,
    b_gen: Vec<u32>,
    /// Memoized `h(v)` for vertices the forward search touched.
    memo: Vec<f64>,
    memo_gen: Vec<u32>,
    gen: u32,
    heap: BinaryHeap<Entry>,
    stack: Vec<VertexId>,
    /// Vertices settled by the last `init` — the per-query setup cost.
    init_settled: usize,
}

impl ChPotentialScratch {
    /// Vertices settled by the backward-upward search of the last `init` —
    /// the whole per-query setup; `benches/potentials.rs` asserts it stays
    /// a small fraction of the graph.
    pub fn last_init_settled(&self) -> usize {
        self.init_settled
    }

    /// Restores a logically fresh state after a contained panic while
    /// keeping every warmed allocation: both generation-stamp arrays are
    /// zeroed and the generation restarts, so any torn values in `b` /
    /// `memo` become unreachable — the same wholesale invalidation the
    /// wrap-around path of `reset` performs. Capacity survives.
    pub fn sanitize(&mut self) {
        self.heap.clear();
        self.stack.clear();
        self.b_gen.fill(0);
        self.memo_gen.fill(0);
        self.gen = 0;
        self.init_settled = 0;
    }

    // td-lint: hot
    fn reset(&mut self, n: usize) -> u32 {
        if self.memo.len() != n {
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.b = vec![f64::INFINITY; n];
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.b_gen = vec![0; n];
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.memo = vec![f64::INFINITY; n];
            // td-lint: allow(hot-alloc) cold branch: only the first query at a new graph size
            self.memo_gen = vec![0; n];
            self.gen = 0;
        }
        self.heap.clear();
        self.stack.clear();
        let g = bump_generation(&mut self.gen, &mut self.b_gen);
        // One generation counter stamps both arrays; they were reset
        // together, so the wrap-around fill above must cover both.
        if g == 1 {
            self.memo_gen.fill(0);
        }
        g
    }
}

/// The lazy CH potential: `init(d, t)` selects the tightest suffix-window
/// metric whose start is at or before `t` and runs one backward upward
/// search from `d` (distances `b[·]` within that metric's downward graph);
/// `h(v)` then resolves `h(v) = min(b[v], min_{(v,u) ∈ G↑} w(v,u) + h(u))`
/// by a memoized depth-first pass over the (acyclic) upward graph — each
/// vertex is resolved at most once per query, and only if the forward
/// search asks for it.
pub struct ChPotential<'a> {
    ch: &'a ContractionHierarchy,
    metric: &'a td_ch::MetricCsr,
    scratch: &'a mut ChPotentialScratch,
}

impl<'a> ChPotential<'a> {
    /// Binds the hierarchy to (reusable) scratch.
    pub fn new(ch: &'a ContractionHierarchy, scratch: &'a mut ChPotentialScratch) -> Self {
        ChPotential {
            ch,
            metric: ch.metric(0),
            scratch,
        }
    }
}

impl Potential for ChPotential<'_> {
    // td-lint: hot
    fn init(&mut self, d: VertexId, t: f64) {
        debug_assert!((d as usize) < self.ch.num_vertices());
        self.metric = self.ch.metric_for(t);
        let sc = &mut *self.scratch;
        let gen = sc.reset(self.ch.num_vertices());
        sc.init_settled = 0;
        sc.b[d as usize] = 0.0;
        sc.b_gen[d as usize] = gen;
        // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
        sc.heap.push(Entry {
            key: 0.0,
            vertex: d,
        });
        while let Some(Entry { key, vertex: v }) = sc.heap.pop() {
            if key > sc.b[v as usize] {
                continue; // stale
            }
            sc.init_settled += 1;
            let (tails, weights) = self.metric.backward_up_edges(v);
            for (&u, &w) in tails.iter().zip(weights.iter()) {
                let cand = key + w;
                let known = if sc.b_gen[u as usize] == gen {
                    sc.b[u as usize]
                } else {
                    f64::INFINITY
                };
                if cand < known {
                    sc.b[u as usize] = cand;
                    sc.b_gen[u as usize] = gen;
                    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
                    sc.heap.push(Entry {
                        key: cand,
                        vertex: u,
                    });
                }
            }
        }
    }

    // td-lint: hot
    fn h(&mut self, v: VertexId) -> f64 {
        let sc = &mut *self.scratch;
        let gen = sc.gen;
        debug_assert!((v as usize) < sc.memo_gen.len());
        if sc.memo_gen[v as usize] == gen {
            return sc.memo[v as usize];
        }
        // Iterative DFS over the upward DAG: a vertex is computed once all
        // its up-neighbours are memoized; a vertex found already-memoized on
        // the stack (pushed twice via two parents) just pops.
        // td-lint: allow(hot-alloc) stack retains warmed capacity across queries
        sc.stack.push(v);
        while let Some(&x) = sc.stack.last() {
            if sc.memo_gen[x as usize] == gen {
                sc.stack.pop();
                continue;
            }
            let (heads, _) = self.metric.up_edges(x);
            let mut pending = false;
            for &u in heads {
                if sc.memo_gen[u as usize] != gen {
                    // td-lint: allow(hot-alloc) stack retains warmed capacity across queries
                    sc.stack.push(u);
                    pending = true;
                }
            }
            if pending {
                continue;
            }
            let (heads, weights) = self.metric.up_edges(x);
            let mut best = if sc.b_gen[x as usize] == gen {
                sc.b[x as usize]
            } else {
                f64::INFINITY
            };
            for (&u, &w) in heads.iter().zip(weights.iter()) {
                best = best.min(w + sc.memo[u as usize]);
            }
            sc.memo[x as usize] = best;
            sc.memo_gen[x as usize] = gen;
            sc.stack.pop();
        }
        sc.memo[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::{shortest_path_cost_frozen_with, DijkstraScratch};
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    /// Both potentials must agree with each other (both are exact min-graph
    /// distances) and lower-bound the true TD cost.
    #[test]
    fn potentials_agree_and_lower_bound() {
        for seed in 0..3u64 {
            let g = seeded_graph(seed, 45, 32, 3);
            let fg = g.freeze();
            let ch = ContractionHierarchy::build(&fg);
            let mut full_sc = FullPotentialScratch::default();
            let mut ch_sc = ChPotentialScratch::default();
            let mut dj = DijkstraScratch::default();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e);
            for _ in 0..6 {
                let d = rng.gen_range(0..45) as u32;
                let mut full = FullPotential::new(&fg, &mut full_sc);
                let mut lazy = ChPotential::new(&ch, &mut ch_sc);
                full.init(d, 0.0);
                lazy.init(d, 0.0);
                for v in 0..45u32 {
                    let a = full.h(v);
                    let b = lazy.h(v);
                    if a.is_infinite() || b.is_infinite() {
                        assert!(
                            a.is_infinite() && b.is_infinite(),
                            "v={v} d={d}: {a} vs {b}"
                        );
                        continue;
                    }
                    assert!((a - b).abs() < 1e-9, "v={v} d={d}: {a} vs {b}");
                    let t = rng.gen_range(0.0..DAY);
                    if let Some(c) = shortest_path_cost_frozen_with(&mut dj, &fg, v, d, t) {
                        assert!(b <= c + 1e-9, "h({v})={b} exceeds TD cost {c} at t={t}");
                    }
                }
            }
        }
    }

    /// Consistency: `h(u) ≤ w_min(u,v) + h(v)` for every edge.
    #[test]
    fn ch_potential_is_consistent() {
        let g = seeded_graph(11, 40, 30, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut sc = ChPotentialScratch::default();
        for d in [0u32, 7, 19, 39] {
            let mut pot = ChPotential::new(&ch, &mut sc);
            pot.init(d, 0.0);
            for u in 0..40u32 {
                let hu = pot.h(u);
                let (heads, edges, mins) = fg.out_slices_with_min(u);
                for ((&v, &_e), &min) in heads.iter().zip(edges.iter()).zip(mins.iter()) {
                    let hv = pot.h(v);
                    assert!(
                        hu <= min + hv + 1e-9,
                        "inconsistent at ({u},{v}), d={d}: {hu} > {min} + {hv}"
                    );
                }
            }
        }
    }

    #[test]
    fn init_settles_a_fraction_of_the_graph() {
        let g = seeded_graph(3, 60, 45, 3);
        let fg = g.freeze();
        let ch = ContractionHierarchy::build(&fg);
        let mut sc = ChPotentialScratch::default();
        let mut pot = ChPotential::new(&ch, &mut sc);
        pot.init(30, 0.0);
        let settled = sc.last_init_settled();
        assert!(settled > 0, "backward search must settle the destination");
        assert!(settled <= 60, "cannot settle more than the graph");
    }
}
