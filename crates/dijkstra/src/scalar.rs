// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Time-dependent Dijkstra for a fixed departure time.
//!
//! Under FIFO, growing the settled set by earliest *arrival time* is correct
//! exactly as in the static case (Cooke & Halsey \[6\]): when a vertex is
//! popped, its arrival label is final. Complexity `O((n log n + m) · c)` as
//! quoted in §6 of the paper.

use crate::budget::{BoundedCost, QueryBudget, RunStatus};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use td_graph::{FrozenGraph, Path, TdGraph, VertexId};
use td_obs::SearchStats;
use td_plf::eval_ids_at;

/// Out-edge relaxations are batched in chunks of this many edges: prunes
/// first, then one [`eval_ids_at`] arena pass over the survivors, then the
/// label updates. Stack arrays of this size hold the gathered chunk.
pub(crate) const RELAX_CHUNK: usize = 32;

/// Max-heap entry ordered by *smallest* arrival time.
#[derive(Copy, Clone, Debug)]
struct HeapEntry {
    arrival: f64,
    vertex: VertexId,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.arrival == other.arrival && self.vertex == other.vertex
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: smaller arrival = greater priority. `total_cmp` keeps the
        // comparison panic-free (arrivals are finite by Plf invariant, and a
        // NaN would order deterministically rather than abort a query).
        other
            .arrival
            .total_cmp(&self.arrival)
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Reusable search state for scalar TD-Dijkstra: distance/parent arrays and
/// the priority queue are recycled across queries (allocation-free after the
/// first query warms them to the graph's size).
#[derive(Clone, Debug, Default)]
pub struct DijkstraScratch {
    arrival: Vec<Option<f64>>,
    best: Vec<f64>,
    parent: Vec<VertexId>,
    heap: BinaryHeap<HeapEntry>,
    /// Counters for the most recent frozen run, reset at query start. Plain
    /// `u64`s resident in the scratch so the hot loop records without
    /// touching shared state; callers export them via [`SearchStats::take`].
    pub stats: SearchStats,
}

/// The travel cost of the shortest path `s → d` departing at `t`, or `None`
/// if `d` is unreachable.
pub fn shortest_path_cost(g: &TdGraph, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
    shortest_path_cost_with(&mut DijkstraScratch::default(), g, s, d, t)
}

/// [`shortest_path_cost`] reusing `scratch`.
pub fn shortest_path_cost_with(
    scratch: &mut DijkstraScratch,
    g: &TdGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<f64> {
    run(scratch, g, s, Some(d), t);
    scratch.arrival[d as usize].map(|a| a - t)
}

/// The shortest path and its cost, or `None` if unreachable.
pub fn shortest_path(g: &TdGraph, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
    shortest_path_with(&mut DijkstraScratch::default(), g, s, d, t)
}

/// [`shortest_path`] reusing `scratch` (the returned [`Path`] still
/// allocates — it is the result).
pub fn shortest_path_with(
    scratch: &mut DijkstraScratch,
    g: &TdGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<(f64, Path)> {
    run(scratch, g, s, Some(d), t);
    let arr = scratch.arrival[d as usize]?;
    let mut vertices = vec![d];
    let mut cur = d;
    while cur != s {
        let p = scratch.parent[cur as usize];
        debug_assert_ne!(p, u32::MAX, "settled vertex must have a parent");
        vertices.push(p);
        cur = p;
    }
    vertices.reverse();
    Some((arr - t, Path::new(vertices)))
}

/// Costs from `s` to every vertex departing at `t` (`f64::INFINITY` when
/// unreachable).
pub fn one_to_all(g: &TdGraph, s: VertexId, t: f64) -> Vec<f64> {
    let mut scratch = DijkstraScratch::default();
    run(&mut scratch, g, s, None, t);
    scratch
        .arrival
        .iter()
        .map(|a| a.map(|x| x - t).unwrap_or(f64::INFINITY))
        .collect()
}

/// [`shortest_path_cost_with`] over the frozen CSR/arena representation —
/// the hot path: flat adjacency walks, SoA breakpoint evaluation, and
/// per-edge `min_cost` lower bounds pruning relaxations that provably cannot
/// improve the tentative target arrival.
// td-lint: hot
pub fn shortest_path_cost_frozen_with(
    scratch: &mut DijkstraScratch,
    fg: &FrozenGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<f64> {
    run_frozen(scratch, fg, s, Some(d), t, &QueryBudget::UNLIMITED);
    debug_assert!((d as usize) < scratch.arrival.len());
    scratch.arrival[d as usize].map(|a| a - t)
}

/// [`shortest_path_cost_frozen_with`] under a [`QueryBudget`]: runs the
/// identical search (bit-identical float operations, so a completed run
/// returns the bit-identical exact answer) but stops at the budget's
/// checkpoints. On exhaustion the frontier's minimum arrival key lower-
/// bounds the destination's arrival and the tentative target label (if a
/// path was found) upper-bounds it, so the caller gets a bracketing
/// interval, never a wrong exact claim.
// td-lint: hot
pub fn shortest_path_cost_frozen_bounded_with(
    scratch: &mut DijkstraScratch,
    fg: &FrozenGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
    budget: &QueryBudget,
) -> BoundedCost {
    debug_assert!((d as usize) < fg.num_vertices(), "destination out of range");
    match run_frozen(scratch, fg, s, Some(d), t, budget) {
        RunStatus::Complete => {
            debug_assert!((d as usize) < scratch.arrival.len());
            BoundedCost::Exact(scratch.arrival[d as usize].map(|a| a - t))
        }
        RunStatus::Exhausted { frontier_key } => {
            // `best[d]` is the tentative arrival at d (INFINITY if no path
            // to d has been relaxed yet) — an upper bound by construction.
            BoundedCost::exhausted_from_arrivals(frontier_key, scratch.best[d as usize], t)
        }
    }
}

/// [`shortest_path_with`] over the frozen representation.
pub fn shortest_path_frozen_with(
    scratch: &mut DijkstraScratch,
    fg: &FrozenGraph,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Option<(f64, Path)> {
    run_frozen(scratch, fg, s, Some(d), t, &QueryBudget::UNLIMITED);
    let arr = scratch.arrival[d as usize]?;
    let mut vertices = vec![d];
    let mut cur = d;
    while cur != s {
        let p = scratch.parent[cur as usize];
        debug_assert_ne!(p, u32::MAX, "settled vertex must have a parent");
        vertices.push(p);
        cur = p;
    }
    vertices.reverse();
    Some((arr - t, Path::new(vertices)))
}

// td-lint: hot
fn run_frozen(
    scratch: &mut DijkstraScratch,
    fg: &FrozenGraph,
    s: VertexId,
    target: Option<VertexId>,
    t: f64,
    budget: &QueryBudget,
) -> RunStatus {
    let n = fg.num_vertices();
    debug_assert!((s as usize) < n, "source out of range");
    let DijkstraScratch {
        arrival,
        best,
        parent,
        heap,
        stats,
    } = scratch;
    arrival.clear();
    arrival.resize(n, None);
    best.clear();
    best.resize(n, f64::INFINITY);
    parent.clear();
    parent.resize(n, u32::MAX);
    heap.clear();
    stats.reset();
    best[s as usize] = t;
    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
    heap.push(HeapEntry {
        arrival: t,
        vertex: s,
    });
    // Tentative arrival at the target: any relaxation whose lower bound
    // cannot beat it is useless for the s → d answer (edge costs are
    // non-negative, so the bound is admissible).
    let mut target_best = f64::INFINITY;
    let mut settles: u64 = 0;
    while let Some(HeapEntry {
        arrival: a,
        vertex: u,
    }) = heap.pop()
    {
        if arrival[u as usize].is_some() {
            continue; // stale entry
        }
        // Budget checkpoint. Settling the target itself is always free —
        // it finishes the query without relaxing a single edge.
        if target != Some(u) && budget.exhausted(settles) {
            return RunStatus::Exhausted { frontier_key: a };
        }
        settles += 1;
        stats.settle(1);
        arrival[u as usize] = Some(a);
        if target == Some(u) {
            break;
        }
        let (heads, edges, mins) = fg.out_slices_with_min(u);
        // Batched relaxation: per chunk, run the streaming lower-bound
        // prunes first (the true candidate is ≥ a + min_cost(e)), gather the
        // survivors' weight-function ids, evaluate them all at `a` in one
        // arena pass, then apply the label updates in edge order. The
        // updates still compare against the freshest `best`, so duplicate
        // heads within a chunk resolve exactly as the scalar loop did.
        let deg = heads.len();
        let mut ids = [0u32; RELAX_CHUNK];
        let mut slots = [0u32; RELAX_CHUNK];
        let mut vals = [0.0f64; RELAX_CHUNK];
        let mut base = 0usize;
        while base < deg {
            let stop = (base + RELAX_CHUNK).min(deg);
            let mut m = 0usize;
            for idx in base..stop {
                // debug_assert-documented indexing: the three out-slices
                // share one length, and idx < stop ≤ deg.
                debug_assert!(idx < heads.len() && idx < edges.len() && idx < mins.len());
                let v = heads[idx];
                if arrival[v as usize].is_some() {
                    continue;
                }
                let lb = a + mins[idx];
                if lb >= best[v as usize] || (target.is_some() && lb >= target_best) {
                    stats.prune(1);
                    continue;
                }
                // debug_assert-documented indexing: m ≤ idx - base < RELAX_CHUNK.
                debug_assert!(m < RELAX_CHUNK);
                ids[m] = edges[idx];
                slots[m] = idx as u32;
                m += 1;
            }
            eval_ids_at(&fg.weights, &ids[..m], a, &mut vals[..m]);
            stats.relax((stop - base) as u64);
            stats.eval_batched(m as u64);
            for j in 0..m {
                // debug_assert-documented indexing: j < m ≤ RELAX_CHUNK, and
                // slots[j] was written from an in-range idx above.
                debug_assert!(j < slots.len() && j < vals.len());
                let idx = slots[j] as usize;
                debug_assert!(idx < heads.len());
                let v = heads[idx];
                let cand = a + vals[j];
                if cand < best[v as usize] {
                    best[v as usize] = cand;
                    parent[v as usize] = u;
                    if target == Some(v) {
                        target_best = cand;
                    }
                    stats.heap_push(1);
                    // td-lint: allow(hot-alloc) heap retains warmed capacity across queries
                    heap.push(HeapEntry {
                        arrival: cand,
                        vertex: v,
                    });
                }
            }
            base = stop;
        }
    }
    RunStatus::Complete
}

fn run(scratch: &mut DijkstraScratch, g: &TdGraph, s: VertexId, target: Option<VertexId>, t: f64) {
    let n = g.num_vertices();
    let DijkstraScratch {
        arrival,
        best,
        parent,
        heap,
        ..
    } = scratch;
    arrival.clear();
    arrival.resize(n, None);
    best.clear();
    best.resize(n, f64::INFINITY);
    parent.clear();
    parent.resize(n, u32::MAX);
    heap.clear();
    best[s as usize] = t;
    heap.push(HeapEntry {
        arrival: t,
        vertex: s,
    });
    while let Some(HeapEntry {
        arrival: a,
        vertex: u,
    }) = heap.pop()
    {
        if arrival[u as usize].is_some() {
            continue; // stale entry
        }
        arrival[u as usize] = Some(a);
        if target == Some(u) {
            break;
        }
        for &(v, e) in g.out_edges(u) {
            if arrival[v as usize].is_some() {
                continue;
            }
            let cand = a + g.weight(e).eval(a);
            if cand < best[v as usize] {
                best[v as usize] = cand;
                parent[v as usize] = u;
                heap.push(HeapEntry {
                    arrival: cand,
                    vertex: v,
                });
            }
        }
    }
}

// Compile-time pin: per-worker scratch moves to its thread. A future
// `Rc`/`Cell` field fails this line instead of a test.
const _: () = {
    const fn moves_to_worker<T: Send>() {}
    moves_to_worker::<DijkstraScratch>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use td_plf::Plf;

    /// The four-edge sub-network of the paper's Fig. 1b:
    /// v1→v2→v9 and v1→v4→v9 (ids 0-based: 1→0, 2→1, 4→2, 9→3).
    fn fig1_subnetwork() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        let w12 = Plf::from_pairs(&[(0.0, 10.0), (20.0, 10.0), (60.0, 15.0)]).unwrap();
        let w29 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 10.0), (60.0, 15.0)]).unwrap();
        let w14 = Plf::from_pairs(&[(0.0, 5.0), (30.0, 15.0), (60.0, 25.0)]).unwrap();
        let w49 = Plf::from_pairs(&[(0.0, 5.0), (60.0, 15.0)]).unwrap();
        g.add_edge(0, 1, w12).unwrap(); // v1 -> v2
        g.add_edge(1, 3, w29).unwrap(); // v2 -> v9
        g.add_edge(0, 2, w14).unwrap(); // v1 -> v4
        g.add_edge(2, 3, w49).unwrap(); // v4 -> v9
        g
    }

    #[test]
    fn example_2_3_early_departure_goes_via_v4() {
        // At t=0 the paper says the shortest path is (e_{1,4}, e_{4,9}).
        let g = fig1_subnetwork();
        let (cost, path) = shortest_path(&g, 0, 3, 0.0).unwrap();
        assert_eq!(path.vertices, vec![0, 2, 3]);
        // cost = w14(0) + w49(5) = 5 + (5 + 5·10/60) = 10.833…
        let want = 5.0 + (5.0 + 5.0 * 10.0 / 60.0);
        assert!((cost - want).abs() < 1e-9, "cost={cost}");
    }

    #[test]
    fn example_2_3_late_departure_goes_via_v2() {
        // "as time goes the travel cost of path (e1,2 , e2,9) is much lower".
        let g = fig1_subnetwork();
        let (_, path) = shortest_path(&g, 0, 3, 60.0).unwrap();
        assert_eq!(path.vertices, vec![0, 1, 3]);
    }

    #[test]
    fn cost_matches_path_replay() {
        let g = fig1_subnetwork();
        for t in [0.0, 10.0, 25.0, 40.0, 55.0, 70.0] {
            let (cost, path) = shortest_path(&g, 0, 3, t).unwrap();
            let replay = path.cost(&g, t).unwrap();
            assert!((cost - replay).abs() < 1e-9, "t={t}");
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let mut g = TdGraph::with_vertices(3);
        g.add_edge(0, 1, Plf::constant(1.0)).unwrap();
        assert_eq!(shortest_path_cost(&g, 0, 2, 0.0), None);
        assert!(shortest_path(&g, 0, 2, 0.0).is_none());
    }

    #[test]
    fn source_to_itself_is_zero() {
        let g = fig1_subnetwork();
        assert_eq!(shortest_path_cost(&g, 0, 0, 5.0), Some(0.0));
    }

    #[test]
    fn one_to_all_matches_single_queries() {
        let g = fig1_subnetwork();
        let all = one_to_all(&g, 0, 12.0);
        for d in 0..4u32 {
            let single = shortest_path_cost(&g, 0, d, 12.0).unwrap_or(f64::INFINITY);
            assert!((all[d as usize] - single).abs() < 1e-9 || all[d as usize] == single);
        }
    }

    #[test]
    fn departure_time_changes_the_cost() {
        let g = fig1_subnetwork();
        let early = shortest_path_cost(&g, 0, 3, 0.0).unwrap();
        let late = shortest_path_cost(&g, 0, 3, 60.0).unwrap();
        assert!(late > early);
    }

    #[test]
    fn frozen_path_matches_vec_layout() {
        let g = fig1_subnetwork();
        let fg = g.freeze();
        let mut scratch = DijkstraScratch::default();
        for t in [0.0, 10.0, 25.0, 40.0, 55.0, 70.0] {
            for s in 0..4u32 {
                for d in 0..4u32 {
                    let want = shortest_path_cost(&g, s, d, t);
                    let got = shortest_path_cost_frozen_with(&mut scratch, &fg, s, d, t);
                    match (want, got) {
                        (Some(a), Some(b)) => {
                            assert!((a - b).abs() < 1e-12, "s={s} d={d} t={t}: {a} vs {b}")
                        }
                        (None, None) => {}
                        other => panic!("s={s} d={d} t={t}: {other:?}"),
                    }
                    let wp = shortest_path(&g, s, d, t);
                    let gp = shortest_path_frozen_with(&mut scratch, &fg, s, d, t);
                    match (wp, gp) {
                        (Some((wc, wpath)), Some((gc, gpath))) => {
                            assert!((wc - gc).abs() < 1e-12);
                            // Both paths must replay to the same cost (tie
                            // breaks may pick different equal-cost paths).
                            assert!((gpath.cost(&g, t).unwrap() - gc).abs() < 1e-9);
                            assert!((wpath.cost(&g, t).unwrap() - wc).abs() < 1e-9);
                        }
                        (None, None) => {}
                        other => panic!("s={s} d={d} t={t}: {:?}", other.0.map(|_| ())),
                    }
                }
            }
        }
    }

    #[test]
    fn bounded_search_brackets_the_exact_answer() {
        use crate::budget::{BoundedCost, QueryBudget};
        let g = fig1_subnetwork();
        let fg = g.freeze();
        let mut sc = DijkstraScratch::default();
        for t in [0.0, 10.0, 40.0, 70.0] {
            for s in 0..4u32 {
                for d in 0..4u32 {
                    let exact = shortest_path_cost_frozen_with(&mut sc, &fg, s, d, t);
                    for cap in [0u64, 1, 2, 3, u64::MAX] {
                        let budget = QueryBudget::settles(cap);
                        match shortest_path_cost_frozen_bounded_with(&mut sc, &fg, s, d, t, &budget)
                        {
                            BoundedCost::Exact(got) => assert_eq!(
                                got.map(f64::to_bits),
                                exact.map(f64::to_bits),
                                "s={s} d={d} t={t} cap={cap}"
                            ),
                            BoundedCost::Exhausted { lower, upper } => {
                                assert!(lower <= upper, "s={s} d={d} t={t} cap={cap}");
                                match exact {
                                    Some(c) => assert!(
                                        lower <= c + 1e-9 && c <= upper + 1e-9,
                                        "s={s} d={d} t={t} cap={cap}: {c} not in [{lower}, {upper}]"
                                    ),
                                    // Exhaustion must never imply reachability.
                                    None => assert!(upper.is_infinite()),
                                }
                            }
                        }
                    }
                    // An unlimited budget is bit-identical exact.
                    assert_eq!(
                        shortest_path_cost_frozen_bounded_with(
                            &mut sc,
                            &fg,
                            s,
                            d,
                            t,
                            &QueryBudget::UNLIMITED
                        ),
                        BoundedCost::Exact(exact)
                    );
                }
            }
        }
    }

    #[test]
    fn respects_waiting_is_not_allowed() {
        // Costs rise steeply with time: leaving later must not be "fixed" by
        // the algorithm pretending to wait.
        let mut g = TdGraph::with_vertices(2);
        g.add_edge(
            0,
            1,
            Plf::from_pairs(&[(0.0, 10.0), (100.0, 100.0)]).unwrap(),
        )
        .unwrap();
        let c = shortest_path_cost(&g, 0, 1, 100.0).unwrap();
        assert!((c - 100.0).abs() < 1e-9);
    }
}
