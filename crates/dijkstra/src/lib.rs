#![forbid(unsafe_code)]
//! # td-dijkstra — non-index shortest-path algorithms
//!
//! The Dijkstra-based family the paper's §1/§6 survey as the non-index
//! baselines, plus the *profile* (full cost-function) search used as the
//! correctness oracle and as a building block of TD-G-tree:
//!
//! * [`scalar`] — time-dependent Dijkstra for a single departure time
//!   `Q(s, d, t)` (Cooke–Halsey / Dreyfus style, correct under FIFO);
//! * [`profile`] — label-correcting search computing the *shortest travel
//!   cost function* `f_{s,v}(t)` for the whole day (Def. 2);
//! * [`astar`] — time-dependent A\* with admissible lower bounds derived from
//!   a backward Dijkstra over each edge's minimum cost (the classic
//!   static-lower-bound potential of \[15\]), plus the frozen fast path
//!   ordered by any pluggable [`Potential`];
//! * [`potential`] — the [`Potential`] trait and its two implementations:
//!   the legacy [`FullPotential`] (one full backward Dijkstra per
//!   destination) and the lazy [`ChPotential`] (one small backward upward
//!   search in a `td_ch::ContractionHierarchy` + per-vertex memoized
//!   resolution — the CH-Potentials scheme that makes TD-A\* the fast exact
//!   query path).

pub mod astar;
pub mod bidirectional;
pub mod budget;
pub mod potential;
pub mod profile;
pub mod scalar;

pub use astar::{
    astar_cost, astar_cost_frozen_bounded_with, astar_cost_frozen_with, astar_path_frozen_with,
    AStarScratch, LowerBounds, LowerBoundsScratch,
};
pub use bidirectional::{
    bidirectional_cost, bidirectional_cost_frozen_bounded_with, bidirectional_cost_frozen_with,
    BidirectionalScratch,
};
pub use budget::{BoundedCost, QueryBudget, DEADLINE_STRIDE};
pub use potential::{
    ChPotential, ChPotentialScratch, FullPotential, FullPotentialScratch, Potential,
};
pub use profile::{
    profile_corridor, profile_search, profile_search_frozen, profile_search_frozen_bounded,
    profile_search_frozen_corridor, profile_search_frozen_corridor_to, profile_search_to,
    CorridorStats, ProfileCorridor, ProfileResult,
};
pub use scalar::{
    one_to_all, shortest_path, shortest_path_cost, shortest_path_cost_frozen_bounded_with,
    shortest_path_cost_frozen_with, shortest_path_cost_with, shortest_path_frozen_with,
    shortest_path_with, DijkstraScratch,
};
