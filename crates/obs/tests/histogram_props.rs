//! Histogram edge cases and shard-merge properties (ISSUE 9 satellite).

use proptest::prelude::*;
use td_obs::{bucket_bound, bucket_of, HistSnapshot, Histogram, BUCKETS, SHARDS};

#[test]
fn zero_observations() {
    let h = Histogram::new();
    let s = h.snapshot();
    assert_eq!(s.count(), 0);
    assert_eq!(s.sum, 0);
    assert_eq!(s.max, 0);
    assert_eq!(s.quantile(0.5), 0);
    assert_eq!(s.percentiles(), [0, 0, 0, 0]);
}

#[test]
fn single_observation_every_quantile_is_it() {
    for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
        let h = Histogram::new();
        h.observe(v);
        let s = h.snapshot();
        assert_eq!(s.count(), 1);
        assert_eq!(s.max, v);
        for q in [0.0, 0.5, 0.99, 1.0] {
            let est = s.quantile(q);
            // The estimate is the bucket bound clamped by the exact max,
            // so with one observation it is exact.
            assert_eq!(est, v, "q={q} v={v}");
        }
    }
}

#[test]
fn extreme_values_stay_in_range() {
    // Below the first bound (0 and 1 share bucket 0) and at the top of the
    // u64 range: nothing falls outside the fixed bucket array.
    let h = Histogram::new();
    h.observe(0);
    h.observe(1);
    h.observe(u64::MAX);
    h.observe(u64::MAX - 1);
    let s = h.snapshot();
    assert_eq!(s.count(), 4);
    assert_eq!(s.buckets[0], 2);
    assert_eq!(s.buckets[BUCKETS - 1], 2);
    assert_eq!(s.max, u64::MAX);
    assert_eq!(bucket_of(0), 0);
    assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Spreading observations round-robin over shards yields the same
    /// merged snapshot as putting them all on shard 0.
    #[test]
    fn interleaved_shards_equal_single_shard(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        let spread = Histogram::new();
        let single = Histogram::new();
        for (i, &v) in values.iter().enumerate() {
            spread.observe_shard(i, v);
            single.observe(v);
        }
        prop_assert_eq!(spread.snapshot(), single.snapshot());
    }

    /// Merging disjoint per-shard snapshots equals the snapshot of the
    /// interleaved whole: merge is bucket-wise addition, order-free.
    #[test]
    fn disjoint_merge_equals_interleaved(values in proptest::collection::vec(0u64..u64::MAX, 0..200)) {
        // Interleaved: one histogram receiving everything.
        let whole = Histogram::new();
        // Disjoint: one histogram per shard slot, merged by hand.
        let mut parts: Vec<Histogram> = (0..SHARDS).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            whole.observe_shard(i, v);
            parts[i % SHARDS].observe(v);
        }
        let mut merged = HistSnapshot::default();
        for p in &mut parts {
            merged.merge(&p.snapshot());
        }
        prop_assert_eq!(merged, whole.snapshot());
    }

    /// Count/sum/max bookkeeping matches a direct fold, and every quantile
    /// estimate is bounded by the exact max.
    #[test]
    fn snapshot_invariants(values in proptest::collection::vec(0u64..(1u64 << 40), 1..100)) {
        let h = Histogram::new();
        for &v in &values {
            h.observe(v);
        }
        let s = h.snapshot();
        prop_assert_eq!(s.count(), values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.max, *values.iter().max().unwrap());
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = s.quantile(q);
            prop_assert!(est <= s.max);
            // The estimate never undershoots the true quantile's bucket
            // lower bound: it is an upper bound of the right bucket.
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert!(est >= truth || est == s.max, "q={} est={} truth={}", q, est, truth);
        }
    }
}
