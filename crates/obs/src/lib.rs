//! # td-obs — zero-overhead query/serving telemetry
//!
//! Bottom-of-stack observability for the time-dependent routing workspace:
//! sharded [`Counter`]s and [`Gauge`]s on relaxed atomics, a log-bucketed
//! latency [`Histogram`] with p50/p95/p99/max readout, RAII [`PhaseTimer`]
//! spans, a scratch-resident [`SearchStats`] recorder for the `td-lint:
//! hot` search loops, and a [`Registry`] with a deterministic
//! Prometheus-text exposition ([`Registry::render_prometheus`]).
//!
//! Design rules (see `crates/obs/README.md` for the full story):
//!
//! * **No contention on the hot path.** Counters and histograms hold
//!   [`SHARDS`] cache-line-padded cells; workers write their own shard with
//!   `Relaxed` atomics and shards are merged only at scrape time.
//! * **No allocation after registration.** Handles are `Arc`s captured at
//!   startup; the write side is pure atomic arithmetic.
//! * **Nothing shared inside the tagged loops.** The frozen search loops
//!   record into plain-`u64` [`SearchStats`] fields resident in the query
//!   scratch; totals are exported to the shards once per query, outside the
//!   loop.
//! * **Compile-out.** With the `disabled` cargo feature, every
//!   [`SearchStats`] recorder method is an empty `#[inline(always)]` body
//!   and [`ENABLED`] is `false` so callers can gate their clock reads and
//!   shard exports out entirely.

#![forbid(unsafe_code)]

mod catalog;
mod metric;
mod registry;
mod span;
mod stats;

pub use catalog::{metrics, phase, Metrics};
pub use metric::{
    bucket_bound, bucket_of, Counter, Gauge, HistSnapshot, Histogram, BUCKETS, SHARDS,
};
pub use registry::Registry;
pub use span::PhaseTimer;
pub use stats::{QueryTrace, SearchStats};

/// `false` when the crate is built with the `disabled` feature: recorder
/// methods are no-ops and callers should skip clock reads / shard exports
/// (`if td_obs::ENABLED { ... }` compiles the block out).
pub const ENABLED: bool = cfg!(not(feature = "disabled"));
