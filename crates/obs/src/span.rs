//! RAII phase spans for the cold paths (build, customization, snapshot
//! I/O): start a [`PhaseTimer`], drop it (or [`PhaseTimer::stop`] it) when
//! the phase ends.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::metric::Histogram;

/// A wall-clock span. Two modes:
///
/// * [`PhaseTimer::observing`] — on drop, records the elapsed nanoseconds
///   into a histogram (the RAII phase-span pattern).
/// * [`PhaseTimer::start`] — a plain stopwatch; read it with
///   [`PhaseTimer::elapsed`] or [`PhaseTimer::stop`].
#[must_use = "a PhaseTimer measures the span it is alive for"]
pub struct PhaseTimer {
    start: Instant,
    sink: Option<Arc<Histogram>>,
}

impl PhaseTimer {
    /// A stopwatch with no metric sink.
    pub fn start() -> PhaseTimer {
        PhaseTimer {
            start: Instant::now(),
            sink: None,
        }
    }

    /// A span that observes its elapsed nanoseconds into `sink` on drop.
    pub fn observing(sink: Arc<Histogram>) -> PhaseTimer {
        PhaseTimer {
            start: Instant::now(),
            sink: Some(sink),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Ends the span now, recording into the sink (if any), and returns the
    /// elapsed time.
    pub fn stop(mut self) -> Duration {
        let elapsed = self.start.elapsed();
        if let Some(sink) = self.sink.take() {
            sink.observe(elapsed.as_nanos().min(u64::MAX as u128) as u64);
        }
        elapsed
    }
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        if let Some(sink) = self.sink.take() {
            sink.observe(self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observing_records_on_drop() {
        let h = Arc::new(Histogram::new());
        {
            let _t = PhaseTimer::observing(Arc::clone(&h));
        }
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn stop_records_once() {
        let h = Arc::new(Histogram::new());
        let t = PhaseTimer::observing(Arc::clone(&h));
        let _elapsed = t.stop(); // drop after stop must not double-record
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn stopwatch_has_no_sink() {
        let t = PhaseTimer::start();
        let _ = t.elapsed();
        let _ = t.stop(); // no panic, nothing recorded anywhere
    }
}
