//! The process-wide metric catalog.
//!
//! Every family the workspace emits is registered up front in
//! [`Metrics::new`], so a scrape's metric-*name* set is deterministic: it
//! never depends on which code paths a particular workload happened to
//! exercise. Handles are plain fields — the serving path reads them through
//! the `&'static Metrics` returned by [`metrics`] without ever touching the
//! registry lock.

use std::sync::{Arc, OnceLock};

use crate::metric::{Counter, Gauge, Histogram};
use crate::registry::Registry;
use crate::span::PhaseTimer;
use crate::stats::{QueryTrace, SearchStats};

/// Handles to every metric family the workspace emits.
pub struct Metrics {
    pub registry: Registry,

    // -- search (per-query counters, exported from `SearchStats`) --
    pub search_settled: Arc<Counter>,
    pub search_relaxed: Arc<Counter>,
    pub search_plf_evals_scalar: Arc<Counter>,
    pub search_plf_evals_batched: Arc<Counter>,
    pub search_minbound_prunes: Arc<Counter>,
    pub search_corridor_kills: Arc<Counter>,
    pub search_heap_pushes: Arc<Counter>,

    // -- queries --
    pub queries_total: Arc<Counter>,
    pub query_latency_seconds: Arc<Histogram>,

    // -- degradation ladder --
    pub ladder_exact: Arc<Counter>,
    pub ladder_approximate: Arc<Counter>,
    pub ladder_budget_exhausted: Arc<Counter>,
    pub ladder_panicked: Arc<Counter>,
    pub ladder_invalid: Arc<Counter>,

    // -- live index lifecycle --
    pub live_epoch: Arc<Gauge>,
    pub live_updates_total: Arc<Counter>,
    pub live_rollbacks_total: Arc<Counter>,
    pub live_update_seconds: Arc<Histogram>,

    // -- snapshots --
    pub snapshot_save_seconds: Arc<Histogram>,
    pub snapshot_load_seconds: Arc<Histogram>,

    // -- serving front-end (td-server) --
    pub server_admitted_total: Arc<Counter>,
    pub server_shed_expired_total: Arc<Counter>,
    pub server_batches_total: Arc<Counter>,
    pub server_batch_size: Arc<Histogram>,
    pub server_request_seconds: Arc<Histogram>,
    pub server_queue_depth: Arc<Gauge>,
    pub server_overload_state: Arc<Gauge>,
    pub server_retries_total: Arc<Counter>,
    pub server_lock_recoveries_total: Arc<Counter>,
    pub server_update_applied_total: Arc<Counter>,
    pub server_update_retries_total: Arc<Counter>,
    pub server_update_shed_total: Arc<Counter>,
}

const LADDER: &str = "td_ladder_outcomes_total";
const LADDER_HELP: &str = "Degradation-ladder outcomes of bounded queries";
const PHASE: &str = "td_phase_seconds";
const PHASE_HELP: &str = "Wall time of coarse build/customization/load phases";
const FALLBACK: &str = "td_snapshot_fallback_total";
const FALLBACK_HELP: &str =
    "Snapshot loads served from the .tdx.prev generation, by primary-load error";
const REJECTED: &str = "td_server_rejected_total";
const REJECTED_HELP: &str = "Requests refused at admission, by typed reason";

impl Metrics {
    fn new() -> Metrics {
        let r = Registry::new();
        let m = Metrics {
            search_settled: r.counter(
                "td_search_settled_total",
                "Vertices settled by search loops",
            ),
            search_relaxed: r.counter(
                "td_search_relaxed_total",
                "Edge relaxations attempted by search loops",
            ),
            search_plf_evals_scalar: r.counter(
                "td_search_plf_evals_scalar_total",
                "PLF evaluations through the scalar path",
            ),
            search_plf_evals_batched: r.counter(
                "td_search_plf_evals_batched_total",
                "PLF evaluations through the batched eval_ids_at kernel",
            ),
            search_minbound_prunes: r.counter(
                "td_search_minbound_prunes_total",
                "Arcs skipped by min-cost / potential lower-bound pruning",
            ),
            search_corridor_kills: r.counter(
                "td_search_corridor_kills_total",
                "Profile labels skipped by the corridor filter",
            ),
            search_heap_pushes: r.counter(
                "td_search_heap_pushes_total",
                "Heap pushes (successful label improvements)",
            ),
            queries_total: r.counter(
                "td_queries_total",
                "Queries answered through the query APIs",
            ),
            query_latency_seconds: r
                .histogram_seconds("td_query_latency_seconds", "End-to-end per-query wall time"),
            ladder_exact: r.counter_with(LADDER, LADDER_HELP, "outcome", "exact"),
            ladder_approximate: r.counter_with(LADDER, LADDER_HELP, "outcome", "approximate"),
            ladder_budget_exhausted: r.counter_with(
                LADDER,
                LADDER_HELP,
                "outcome",
                "budget_exhausted",
            ),
            ladder_panicked: r.counter_with(LADDER, LADDER_HELP, "outcome", "panicked"),
            ladder_invalid: r.counter_with(LADDER, LADDER_HELP, "outcome", "invalid"),
            live_epoch: r.gauge("td_live_epoch", "Epoch of the most recent LiveIndex update"),
            live_updates_total: r.counter(
                "td_live_updates_total",
                "LiveIndex updates applied successfully",
            ),
            live_rollbacks_total: r.counter(
                "td_live_rollbacks_total",
                "LiveIndex updates rolled back after a panic",
            ),
            live_update_seconds: r.histogram_seconds(
                "td_live_update_seconds",
                "Wall time of LiveIndex try_apply (repair + swap)",
            ),
            snapshot_save_seconds: r.histogram_seconds(
                "td_snapshot_save_seconds",
                "Wall time of crash-consistent snapshot saves",
            ),
            snapshot_load_seconds: r.histogram_seconds(
                "td_snapshot_load_seconds",
                "Wall time of snapshot loads (including fallback probing)",
            ),
            server_admitted_total: r.counter(
                "td_server_admitted_total",
                "Requests accepted into the admission queue",
            ),
            server_shed_expired_total: r.counter(
                "td_server_shed_expired_total",
                "Admitted requests shed before dispatch because their deadline expired",
            ),
            server_batches_total: r.counter(
                "td_server_batches_total",
                "Coalesced batches dispatched to the executor",
            ),
            server_batch_size: r.histogram(
                "td_server_batch_size",
                "Requests per coalesced batch (raw counts)",
            ),
            server_request_seconds: r.histogram_seconds(
                "td_server_request_seconds",
                "Admission-to-terminal-reply wall time of accepted requests",
            ),
            server_queue_depth: r.gauge(
                "td_server_queue_depth",
                "Current depth of the admission queue",
            ),
            server_overload_state: r.gauge(
                "td_server_overload_state",
                "Overload controller state (0 normal, 1 degraded, 2 shedding)",
            ),
            server_retries_total: r.counter(
                "td_server_retries_total",
                "Panicked slots re-enqueued for their single bounded retry",
            ),
            server_lock_recoveries_total: r.counter(
                "td_server_lock_recoveries_total",
                "Serving-path mutexes recovered from poisoning",
            ),
            server_update_applied_total: r.counter(
                "td_server_update_applied_total",
                "Live-update batches applied by the supervised update lane",
            ),
            server_update_retries_total: r.counter(
                "td_server_update_retries_total",
                "Live-update batches retried after rollback",
            ),
            server_update_shed_total: r.counter(
                "td_server_update_shed_total",
                "Live-update batches shed (queue full, stuck lane, or terminal failure)",
            ),
            registry: Registry::new(), // placeholder, replaced below
        };
        // Labeled families whose children attach lazily: declare them so the
        // scrape's name set does not depend on which paths (or errors) ran.
        r.declare(PHASE, PHASE_HELP, true, "phase");
        r.declare(FALLBACK, FALLBACK_HELP, false, "error");
        r.declare(REJECTED, REJECTED_HELP, false, "reason");
        Metrics { registry: r, ..m }
    }

    /// The `.tdx.prev` fallback counter child for one `StoreError` variant
    /// (the error that made the primary generation unloadable). Cold path:
    /// takes the registry lock on first use per label.
    pub fn snapshot_fallback(&self, error: &str) -> Arc<Counter> {
        self.registry
            .counter_with(FALLBACK, FALLBACK_HELP, "error", error)
    }

    /// The admission-rejection counter child for one typed reason. Cold on
    /// first use per label; servers cache the handles they need.
    pub fn server_rejected(&self, reason: &str) -> Arc<Counter> {
        self.registry
            .counter_with(REJECTED, REJECTED_HELP, "reason", reason)
    }

    /// Exports one query's search counters onto the worker's shard.
    #[inline]
    pub fn record_search(&self, shard: usize, st: &SearchStats) {
        self.search_settled.add_shard(shard, st.settled);
        self.search_relaxed.add_shard(shard, st.relaxed);
        self.search_plf_evals_scalar
            .add_shard(shard, st.plf_evals_scalar);
        self.search_plf_evals_batched
            .add_shard(shard, st.plf_evals_batched);
        self.search_minbound_prunes
            .add_shard(shard, st.minbound_prunes);
        self.search_corridor_kills
            .add_shard(shard, st.corridor_kills);
        self.search_heap_pushes.add_shard(shard, st.heap_pushes);
    }

    /// Exports one query's full trace (latency + search counters) onto the
    /// worker's shard.
    #[inline]
    pub fn record_query(&self, shard: usize, trace: &QueryTrace) {
        self.queries_total.add_shard(shard, 1);
        self.query_latency_seconds.observe_shard(shard, trace.nanos);
        self.record_search(shard, &trace.stats);
    }
}

/// The process-wide catalog. First call registers every family; later calls
/// are a single atomic load.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::new)
}

/// Starts an RAII span that records into the labeled
/// `td_phase_seconds{phase="<name>"}` histogram on drop.
///
/// Cold paths only (build, customize, snapshot I/O): the first call per
/// label takes the registry lock to create the child.
pub fn phase(name: &'static str) -> PhaseTimer {
    let m = metrics();
    PhaseTimer::observing(
        m.registry
            .histogram_seconds_with(PHASE, PHASE_HELP, "phase", name),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_every_family_up_front() {
        let text = metrics().registry.render_prometheus();
        for name in [
            "td_search_settled_total",
            "td_search_relaxed_total",
            "td_search_plf_evals_scalar_total",
            "td_search_plf_evals_batched_total",
            "td_search_minbound_prunes_total",
            "td_search_corridor_kills_total",
            "td_search_heap_pushes_total",
            "td_queries_total",
            "td_query_latency_seconds",
            "td_ladder_outcomes_total",
            "td_live_epoch",
            "td_live_updates_total",
            "td_live_rollbacks_total",
            "td_live_update_seconds",
            "td_snapshot_save_seconds",
            "td_snapshot_load_seconds",
            "td_snapshot_fallback_total",
            "td_phase_seconds",
            "td_server_admitted_total",
            "td_server_rejected_total",
            "td_server_shed_expired_total",
            "td_server_batches_total",
            "td_server_batch_size",
            "td_server_request_seconds",
            "td_server_queue_depth",
            "td_server_overload_state",
            "td_server_retries_total",
            "td_server_lock_recoveries_total",
            "td_server_update_applied_total",
            "td_server_update_retries_total",
            "td_server_update_shed_total",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "family {name} missing from scrape"
            );
        }
    }

    #[test]
    fn phase_span_attaches_a_labeled_child() {
        {
            let _t = phase("unit_test_phase");
        }
        let text = metrics().registry.render_prometheus();
        assert!(text.contains("td_phase_seconds_count{phase=\"unit_test_phase\"} "));
    }

    #[test]
    fn record_query_feeds_counters_and_latency() {
        let m = metrics();
        let before = m.queries_total.get();
        let trace = QueryTrace {
            stats: SearchStats {
                settled: 5,
                ..SearchStats::default()
            },
            nanos: 1_000,
        };
        m.record_query(7, &trace);
        assert_eq!(m.queries_total.get(), before + 1);
        assert!(m.search_settled.get() >= 5);
        assert!(m.query_latency_seconds.snapshot().count() >= 1);
    }
}
