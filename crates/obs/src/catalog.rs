//! The process-wide metric catalog.
//!
//! Every family the workspace emits is registered up front in
//! [`Metrics::new`], so a scrape's metric-*name* set is deterministic: it
//! never depends on which code paths a particular workload happened to
//! exercise. Handles are plain fields — the serving path reads them through
//! the `&'static Metrics` returned by [`metrics`] without ever touching the
//! registry lock.

use std::sync::{Arc, OnceLock};

use crate::metric::{Counter, Gauge, Histogram};
use crate::registry::Registry;
use crate::span::PhaseTimer;
use crate::stats::{QueryTrace, SearchStats};

/// Handles to every metric family the workspace emits.
pub struct Metrics {
    pub registry: Registry,

    // -- search (per-query counters, exported from `SearchStats`) --
    pub search_settled: Arc<Counter>,
    pub search_relaxed: Arc<Counter>,
    pub search_plf_evals_scalar: Arc<Counter>,
    pub search_plf_evals_batched: Arc<Counter>,
    pub search_minbound_prunes: Arc<Counter>,
    pub search_corridor_kills: Arc<Counter>,
    pub search_heap_pushes: Arc<Counter>,

    // -- queries --
    pub queries_total: Arc<Counter>,
    pub query_latency_seconds: Arc<Histogram>,

    // -- degradation ladder --
    pub ladder_exact: Arc<Counter>,
    pub ladder_approximate: Arc<Counter>,
    pub ladder_budget_exhausted: Arc<Counter>,
    pub ladder_panicked: Arc<Counter>,
    pub ladder_invalid: Arc<Counter>,

    // -- live index lifecycle --
    pub live_epoch: Arc<Gauge>,
    pub live_updates_total: Arc<Counter>,
    pub live_rollbacks_total: Arc<Counter>,
    pub live_update_seconds: Arc<Histogram>,

    // -- snapshots --
    pub snapshot_save_seconds: Arc<Histogram>,
    pub snapshot_load_seconds: Arc<Histogram>,
    pub snapshot_fallback_total: Arc<Counter>,
}

const LADDER: &str = "td_ladder_outcomes_total";
const LADDER_HELP: &str = "Degradation-ladder outcomes of bounded queries";
const PHASE: &str = "td_phase_seconds";
const PHASE_HELP: &str = "Wall time of coarse build/customization/load phases";

impl Metrics {
    fn new() -> Metrics {
        let r = Registry::new();
        let m = Metrics {
            search_settled: r.counter(
                "td_search_settled_total",
                "Vertices settled by search loops",
            ),
            search_relaxed: r.counter(
                "td_search_relaxed_total",
                "Edge relaxations attempted by search loops",
            ),
            search_plf_evals_scalar: r.counter(
                "td_search_plf_evals_scalar_total",
                "PLF evaluations through the scalar path",
            ),
            search_plf_evals_batched: r.counter(
                "td_search_plf_evals_batched_total",
                "PLF evaluations through the batched eval_ids_at kernel",
            ),
            search_minbound_prunes: r.counter(
                "td_search_minbound_prunes_total",
                "Arcs skipped by min-cost / potential lower-bound pruning",
            ),
            search_corridor_kills: r.counter(
                "td_search_corridor_kills_total",
                "Profile labels skipped by the corridor filter",
            ),
            search_heap_pushes: r.counter(
                "td_search_heap_pushes_total",
                "Heap pushes (successful label improvements)",
            ),
            queries_total: r.counter(
                "td_queries_total",
                "Queries answered through the query APIs",
            ),
            query_latency_seconds: r
                .histogram_seconds("td_query_latency_seconds", "End-to-end per-query wall time"),
            ladder_exact: r.counter_with(LADDER, LADDER_HELP, "outcome", "exact"),
            ladder_approximate: r.counter_with(LADDER, LADDER_HELP, "outcome", "approximate"),
            ladder_budget_exhausted: r.counter_with(
                LADDER,
                LADDER_HELP,
                "outcome",
                "budget_exhausted",
            ),
            ladder_panicked: r.counter_with(LADDER, LADDER_HELP, "outcome", "panicked"),
            ladder_invalid: r.counter_with(LADDER, LADDER_HELP, "outcome", "invalid"),
            live_epoch: r.gauge("td_live_epoch", "Epoch of the most recent LiveIndex update"),
            live_updates_total: r.counter(
                "td_live_updates_total",
                "LiveIndex updates applied successfully",
            ),
            live_rollbacks_total: r.counter(
                "td_live_rollbacks_total",
                "LiveIndex updates rolled back after a panic",
            ),
            live_update_seconds: r.histogram_seconds(
                "td_live_update_seconds",
                "Wall time of LiveIndex try_apply (repair + swap)",
            ),
            snapshot_save_seconds: r.histogram_seconds(
                "td_snapshot_save_seconds",
                "Wall time of crash-consistent snapshot saves",
            ),
            snapshot_load_seconds: r.histogram_seconds(
                "td_snapshot_load_seconds",
                "Wall time of snapshot loads (including fallback probing)",
            ),
            snapshot_fallback_total: r.counter(
                "td_snapshot_fallback_total",
                "Snapshot loads served from the .tdx.prev generation",
            ),
            registry: Registry::new(), // placeholder, replaced below
        };
        // Phase spans attach labeled children lazily; declare the family so
        // the scrape's name set does not depend on which phases ran.
        r.declare(PHASE, PHASE_HELP, true, "phase");
        Metrics { registry: r, ..m }
    }

    /// Exports one query's search counters onto the worker's shard.
    #[inline]
    pub fn record_search(&self, shard: usize, st: &SearchStats) {
        self.search_settled.add_shard(shard, st.settled);
        self.search_relaxed.add_shard(shard, st.relaxed);
        self.search_plf_evals_scalar
            .add_shard(shard, st.plf_evals_scalar);
        self.search_plf_evals_batched
            .add_shard(shard, st.plf_evals_batched);
        self.search_minbound_prunes
            .add_shard(shard, st.minbound_prunes);
        self.search_corridor_kills
            .add_shard(shard, st.corridor_kills);
        self.search_heap_pushes.add_shard(shard, st.heap_pushes);
    }

    /// Exports one query's full trace (latency + search counters) onto the
    /// worker's shard.
    #[inline]
    pub fn record_query(&self, shard: usize, trace: &QueryTrace) {
        self.queries_total.add_shard(shard, 1);
        self.query_latency_seconds.observe_shard(shard, trace.nanos);
        self.record_search(shard, &trace.stats);
    }
}

/// The process-wide catalog. First call registers every family; later calls
/// are a single atomic load.
pub fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(Metrics::new)
}

/// Starts an RAII span that records into the labeled
/// `td_phase_seconds{phase="<name>"}` histogram on drop.
///
/// Cold paths only (build, customize, snapshot I/O): the first call per
/// label takes the registry lock to create the child.
pub fn phase(name: &'static str) -> PhaseTimer {
    let m = metrics();
    PhaseTimer::observing(
        m.registry
            .histogram_seconds_with(PHASE, PHASE_HELP, "phase", name),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_every_family_up_front() {
        let text = metrics().registry.render_prometheus();
        for name in [
            "td_search_settled_total",
            "td_search_relaxed_total",
            "td_search_plf_evals_scalar_total",
            "td_search_plf_evals_batched_total",
            "td_search_minbound_prunes_total",
            "td_search_corridor_kills_total",
            "td_search_heap_pushes_total",
            "td_queries_total",
            "td_query_latency_seconds",
            "td_ladder_outcomes_total",
            "td_live_epoch",
            "td_live_updates_total",
            "td_live_rollbacks_total",
            "td_live_update_seconds",
            "td_snapshot_save_seconds",
            "td_snapshot_load_seconds",
            "td_snapshot_fallback_total",
            "td_phase_seconds",
        ] {
            assert!(
                text.contains(&format!("# TYPE {name} ")),
                "family {name} missing from scrape"
            );
        }
    }

    #[test]
    fn phase_span_attaches_a_labeled_child() {
        {
            let _t = phase("unit_test_phase");
        }
        let text = metrics().registry.render_prometheus();
        assert!(text.contains("td_phase_seconds_count{phase=\"unit_test_phase\"} "));
    }

    #[test]
    fn record_query_feeds_counters_and_latency() {
        let m = metrics();
        let before = m.queries_total.get();
        let trace = QueryTrace {
            stats: SearchStats {
                settled: 5,
                ..SearchStats::default()
            },
            nanos: 1_000,
        };
        m.record_query(7, &trace);
        assert_eq!(m.queries_total.get(), before + 1);
        assert!(m.search_settled.get() >= 5);
        assert!(m.query_latency_seconds.snapshot().count() >= 1);
    }
}
