//! Named metric families and the Prometheus text exposition.
//!
//! Registration allocates (family + child vectors, `Arc` handles); the
//! write path afterwards is alloc-free — callers hold `Arc<Counter>` /
//! `Arc<Histogram>` handles and never touch the registry lock again. The
//! lock is taken only to register (cold) and to scrape.

use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metric::{bucket_bound, Counter, Gauge, Histogram, BUCKETS};

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: Kind,
    /// Label key shared by every child, `None` for unlabeled families.
    label_key: Option<&'static str>,
    /// `(label value, metric)`; a single `("", _)` child when unlabeled.
    children: Vec<(String, Metric)>,
    /// Divisor applied to histogram ticks when rendering (1e9 turns
    /// nanosecond ticks into the `_seconds` unit Prometheus expects).
    scale: f64,
}

/// A set of named metric families with deterministic (sorted-by-name)
/// exposition. See [`Registry::render_prometheus`].
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    fn get_or_register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        label_key: Option<&'static str>,
        label_value: &str,
        scale: f64,
    ) -> Metric {
        let mut families = self.families.lock().expect("obs registry poisoned");
        let fam = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind && f.label_key == label_key,
                    "metric family {name} re-registered with a different kind or label key"
                );
                f
            }
            None => {
                families.push(Family {
                    name,
                    help,
                    kind,
                    label_key,
                    children: Vec::new(),
                    scale,
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some((_, m)) = fam.children.iter().find(|(v, _)| v == label_value) {
            return clone_metric(m);
        }
        let metric = match kind {
            Kind::Counter => Metric::Counter(Arc::new(Counter::new())),
            Kind::Gauge => Metric::Gauge(Arc::new(Gauge::new())),
            Kind::Histogram => Metric::Histogram(Arc::new(Histogram::new())),
        };
        fam.children
            .push((label_value.to_string(), clone_metric(&metric)));
        metric
    }

    /// Registers (or fetches) an unlabeled counter family.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        match self.get_or_register(name, help, Kind::Counter, None, "", 1.0) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) one labeled child of a counter family.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Arc<Counter> {
        match self.get_or_register(name, help, Kind::Counter, Some(label_key), label_value, 1.0) {
            Metric::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) an unlabeled gauge family.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        match self.get_or_register(name, help, Kind::Gauge, None, "", 1.0) {
            Metric::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) an unlabeled histogram family over raw
    /// (unscaled) ticks — e.g. batch sizes or queue depths rather than
    /// durations.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        match self.get_or_register(name, help, Kind::Histogram, None, "", 1.0) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) an unlabeled histogram family recording
    /// nanosecond ticks, rendered in seconds.
    pub fn histogram_seconds(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        match self.get_or_register(name, help, Kind::Histogram, None, "", 1e9) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) one labeled child of a nanosecond-tick
    /// histogram family rendered in seconds.
    pub fn histogram_seconds_with(
        &self,
        name: &'static str,
        help: &'static str,
        label_key: &'static str,
        label_value: &str,
    ) -> Arc<Histogram> {
        match self.get_or_register(
            name,
            help,
            Kind::Histogram,
            Some(label_key),
            label_value,
            1e9,
        ) {
            Metric::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Pre-registers a family with no children yet, so its `# HELP` /
    /// `# TYPE` header appears in every scrape (deterministic name set)
    /// even before the first labeled child is created.
    pub fn declare(
        &self,
        name: &'static str,
        help: &'static str,
        kind_histogram: bool,
        label_key: &'static str,
    ) {
        let mut families = self.families.lock().expect("obs registry poisoned");
        if families.iter().any(|f| f.name == name) {
            return;
        }
        families.push(Family {
            name,
            help,
            kind: if kind_histogram {
                Kind::Histogram
            } else {
                Kind::Counter
            },
            label_key: Some(label_key),
            children: Vec::new(),
            scale: if kind_histogram { 1e9 } else { 1.0 },
        });
    }

    /// Renders every family in the Prometheus text exposition format.
    ///
    /// Families are sorted by name and children by label value, so the
    /// line ordering (and in particular the metric-*name* set) is
    /// deterministic across runs regardless of registration order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let families = self.families.lock().expect("obs registry poisoned");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by_key(|&i| families[i].name);
        for &i in &order {
            let f = &families[i];
            let _ = writeln!(out, "# HELP {} {}", f.name, f.help);
            let _ = writeln!(out, "# TYPE {} {}", f.name, f.kind.as_str());
            let mut children: Vec<&(String, Metric)> = f.children.iter().collect();
            children.sort_by(|a, b| a.0.cmp(&b.0));
            for (value, metric) in children {
                let label = match f.label_key {
                    Some(key) => format!("{{{key}=\"{value}\"}}"),
                    None => String::new(),
                };
                match metric {
                    Metric::Counter(c) => {
                        let _ = writeln!(out, "{}{} {}", f.name, label, c.get());
                    }
                    Metric::Gauge(g) => {
                        let _ = writeln!(out, "{}{} {}", f.name, label, g.get());
                    }
                    Metric::Histogram(h) => render_histogram(&mut out, f, &label, h),
                }
            }
        }
        out
    }
}

fn clone_metric(m: &Metric) -> Metric {
    match m {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

fn render_histogram(out: &mut String, f: &Family, label: &str, h: &Histogram) {
    let snap = h.snapshot();
    // `label` is either empty or `{key="value"}`; bucket lines need the
    // `le` label merged in.
    let le_prefix = if label.is_empty() {
        "{le=".to_string()
    } else {
        format!("{},le=", &label[..label.len() - 1])
    };
    let mut cum = 0u64;
    let last_nonempty = snap
        .buckets
        .iter()
        .rposition(|&b| b > 0)
        .unwrap_or(0)
        .min(BUCKETS - 2);
    for (k, b) in snap.buckets.iter().enumerate().take(last_nonempty + 1) {
        cum += b;
        let bound = (bucket_bound(k) as f64 + 1.0) / f.scale;
        let _ = writeln!(
            out,
            "{}_bucket{}\"{:e}\"}} {}",
            f.name, le_prefix, bound, cum
        );
    }
    let _ = writeln!(
        out,
        "{}_bucket{}\"+Inf\"}} {}",
        f.name,
        le_prefix,
        snap.count()
    );
    let _ = writeln!(out, "{}_sum{} {}", f.name, label, snap.sum as f64 / f.scale);
    let _ = writeln!(out, "{}_count{} {}", f.name, label, snap.count());
}

// td-lint pins: scrape handles cross worker threads by design.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<Registry>();
    shared_across_threads::<Counter>();
    shared_across_threads::<Gauge>();
    shared_across_threads::<Histogram>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_sorted_and_complete() {
        let r = Registry::new();
        let z = r.counter("z_total", "last family");
        let a = r.histogram_seconds("a_seconds", "first family");
        let g = r.gauge("m_gauge", "middle family");
        z.add(3);
        a.observe(1_000);
        g.set(-7);
        let text = r.render_prometheus();
        let a_pos = text.find("# TYPE a_seconds histogram").unwrap();
        let m_pos = text.find("# TYPE m_gauge gauge").unwrap();
        let z_pos = text.find("# TYPE z_total counter").unwrap();
        assert!(a_pos < m_pos && m_pos < z_pos, "families must sort by name");
        assert!(text.contains("z_total 3"));
        assert!(text.contains("m_gauge -7"));
        assert!(text.contains("a_seconds_count 1"));
        assert!(text.contains("a_seconds_bucket{le=\"+Inf\"} 1"));
    }

    #[test]
    fn labeled_children_render_with_labels() {
        let r = Registry::new();
        let ok = r.counter_with("outcomes_total", "ladder outcomes", "outcome", "exact");
        let bad = r.counter_with("outcomes_total", "ladder outcomes", "outcome", "panicked");
        ok.add(2);
        bad.inc();
        let text = r.render_prometheus();
        assert!(text.contains("outcomes_total{outcome=\"exact\"} 2"));
        assert!(text.contains("outcomes_total{outcome=\"panicked\"} 1"));
        // One header pair for the family, not one per child.
        assert_eq!(text.matches("# TYPE outcomes_total").count(), 1);
    }

    #[test]
    fn same_handle_for_same_name() {
        let r = Registry::new();
        let c1 = r.counter("dup_total", "help");
        let c2 = r.counter("dup_total", "help");
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[test]
    fn declared_family_renders_header_only() {
        let r = Registry::new();
        r.declare("phase_seconds", "per-phase wall time", true, "phase");
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE phase_seconds histogram"));
        assert!(!text.contains("phase_seconds_count"));
    }
}
