//! Core metric primitives: sharded [`Counter`], [`Gauge`], and the
//! log-bucketed [`Histogram`].
//!
//! Every write-side operation is a handful of `Relaxed` atomic ops on a
//! cache-line-padded shard owned (by convention) by one worker thread, so
//! the serving hot path never contends on a shared line. Reads (scrapes)
//! merge all shards by addition; they are racy snapshots, which is exactly
//! what a monitoring scrape wants.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of write shards per metric. Power of two; shard selection masks
/// with `SHARDS - 1`, so any worker index is a valid shard argument.
pub const SHARDS: usize = 8;

/// Number of log₂ buckets in a [`Histogram`]. Bucket `k` holds observations
/// `v` with `2^k <= v < 2^(k+1)` (bucket 0 also holds `v == 0`), covering
/// the full `u64` range: nothing ever falls outside the array.
pub const BUCKETS: usize = 64;

/// One cache line worth of counter cell, so neighbouring shards never share
/// a line.
#[derive(Default)]
#[repr(align(64))]
struct Cell(AtomicU64);

/// Monotonic counter, sharded per worker.
///
/// `add`/`inc` write shard 0 (fine for cold or single-threaded callers);
/// workers on the serving path use `add_shard(worker, n)` so concurrent
/// queries never touch the same cache line.
#[derive(Default)]
pub struct Counter {
    cells: [Cell; SHARDS],
}

impl Counter {
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `n` on shard 0.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_shard(0, n);
    }

    /// Increments shard 0.
    #[inline]
    pub fn inc(&self) {
        self.add_shard(0, 1);
    }

    /// Adds `n` on the caller's shard (any `usize` is valid; masked).
    #[inline]
    pub fn add_shard(&self, shard: usize, n: u64) {
        self.cells[shard & (SHARDS - 1)]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Scrape-time readout: the sum over all shards.
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// Last-write-wins gauge (e.g. the live epoch). Set semantics do not merge,
/// so the gauge is a single padded cell rather than a sharded family.
#[derive(Default)]
#[repr(align(64))]
pub struct Gauge {
    cell: AtomicI64,
}

impl Gauge {
    pub fn new() -> Gauge {
        Gauge::default()
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// One worker's slice of a histogram. Padded so shards on adjacent workers
/// never false-share.
#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> HistShard {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the log₂ bucket holding `v`: `floor(log2(max(v, 1)))`.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (63 - (v | 1).leading_zeros()) as usize
}

/// Upper bound (inclusive, in raw ticks) of bucket `k`: `2^(k+1) - 1`.
/// Saturates at `u64::MAX` for the top bucket.
#[inline]
pub fn bucket_bound(k: usize) -> u64 {
    if k >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << (k + 1)) - 1
    }
}

/// Log₂-bucketed histogram over `u64` ticks (by convention nanoseconds for
/// `*_seconds` families), sharded per worker like [`Counter`].
///
/// An observation is three `Relaxed` ops: bucket `fetch_add`, sum
/// `fetch_add`, and a `fetch_max` keeping the exact maximum. Quantiles are
/// estimated at scrape time from bucket upper bounds ([`HistSnapshot`]);
/// the max is exact.
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            shards: std::array::from_fn(|_| HistShard::new()),
        }
    }

    /// Records `v` on shard 0.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.observe_shard(0, v);
    }

    /// Records `v` on the caller's shard (any `usize` is valid; masked).
    #[inline]
    pub fn observe_shard(&self, shard: usize, v: u64) {
        let s = &self.shards[shard & (SHARDS - 1)];
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Scrape-time readout: all shards merged by addition (max by max).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for s in &self.shards {
            for (k, b) in s.buckets.iter().enumerate() {
                out.buckets[k] += b.load(Ordering::Relaxed);
            }
            out.sum = out.sum.wrapping_add(s.sum.load(Ordering::Relaxed));
            out.max = out.max.max(s.max.load(Ordering::Relaxed));
        }
        out
    }
}

/// A merged, read-only view of a [`Histogram`]: plain `u64` buckets that
/// merge by addition, plus exact sum and max.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; BUCKETS],
    pub sum: u64,
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Merges another snapshot into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The observations recorded since `earlier` was taken from the same
    /// histogram (bucket-wise saturating subtraction). Windowed quantiles —
    /// e.g. an overload controller's "recent p99" — come from diffing two
    /// scrapes of a monotonically growing histogram. The `max` of a window
    /// cannot be recovered from cumulative state, so the diff keeps the
    /// cumulative max (quantiles stay clamped correctly, just less tightly).
    #[must_use]
    pub fn diff(&self, earlier: &HistSnapshot) -> HistSnapshot {
        let mut out = HistSnapshot::default();
        for (k, (a, b)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            out.buckets[k] = a.saturating_sub(*b);
        }
        out.sum = self.sum.wrapping_sub(earlier.sum);
        out.max = self.max;
        out
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) in raw ticks: the upper bound
    /// of the bucket containing the rank-`ceil(q * count)` observation,
    /// clamped by the exact max. Returns 0 with no observations.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (k, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_bound(k).min(self.max);
            }
        }
        self.max
    }

    /// Convenience p50/p95/p99/max readout, in raw ticks.
    pub fn percentiles(&self) -> [u64; 4] {
        [
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(u64::MAX), 63);
        for k in 0..63 {
            assert_eq!(bucket_of(1u64 << k), k as usize);
            assert_eq!(bucket_of((1u64 << (k + 1)) - 1), k as usize);
        }
    }

    #[test]
    fn counter_shards_sum() {
        let c = Counter::new();
        c.inc();
        c.add_shard(3, 10);
        c.add_shard(3 + SHARDS, 10); // masked onto the same shard
        assert_eq!(c.get(), 21);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn histogram_quantiles_track_bounds() {
        let h = Histogram::new();
        for v in [100u64, 200, 300, 400, 1000] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum, 2000);
        assert_eq!(s.max, 1000);
        // p50 rank 3 -> value 300, bucket [256, 512) -> bound 511.
        assert_eq!(s.quantile(0.5), 511);
        // p99 rank 5 -> value 1000, bucket [1024)?? 1000 is in [512, 1024)
        // -> bound 1023, clamped by max -> 1000.
        assert_eq!(s.quantile(0.99), 1000);
    }

    #[test]
    fn diff_isolates_the_window() {
        let h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.observe(v);
        }
        let earlier = h.snapshot();
        for v in [1000u64, 2000] {
            h.observe(v);
        }
        let window = h.snapshot().diff(&earlier);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum, 3000);
        // Window quantiles see only the new observations.
        assert!(window.quantile(0.5) >= 1000);
        // Diffing identical snapshots yields the empty window.
        let snap = h.snapshot();
        assert_eq!(snap.diff(&snap).count(), 0);
    }

    #[test]
    fn histogram_shard_merge_equals_single_shard() {
        let a = Histogram::new();
        let b = Histogram::new();
        for (i, v) in (0..100u64).map(|i| (i, i * i)) {
            a.observe_shard(i as usize, v);
            b.observe(v);
        }
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
