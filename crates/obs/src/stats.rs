//! Scratch-resident search statistics.
//!
//! The frozen search loops are tagged `// td-lint: hot`: no allocation, no
//! locks, no shared atomics. [`SearchStats`] therefore lives *inside* the
//! per-query scratch as plain `u64` fields; the loops bump them through
//! `#[inline(always)]` recorder methods, and the caller exports the totals
//! to the sharded registry counters once per query. Under the `disabled`
//! feature every recorder body compiles to nothing, so the loops are
//! bit-identical to the uninstrumented build.

/// Per-query search counters, filled by the scalar / A* / bidirectional /
/// profile loops and exported once per query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Vertices settled (popped with a final label).
    pub settled: u64,
    /// Edge relaxations attempted (out-arcs scanned at settled vertices;
    /// pruned arcs count here and under `minbound_prunes`).
    pub relaxed: u64,
    /// PLF evaluations done one breakpoint scan at a time.
    pub plf_evals_scalar: u64,
    /// PLF evaluations done through the batched `eval_ids_at` kernel.
    pub plf_evals_batched: u64,
    /// Arcs skipped by the `min_cost` / potential lower-bound prune.
    pub minbound_prunes: u64,
    /// Profile-search label extractions skipped by the corridor filter.
    pub corridor_kills: u64,
    /// Heap pushes (successful label improvements).
    pub heap_pushes: u64,
}

macro_rules! recorder {
    ($(#[$doc:meta])* $name:ident, $field:ident) => {
        $(#[$doc])*
        #[inline(always)]
        pub fn $name(&mut self, n: u64) {
            #[cfg(not(feature = "disabled"))]
            {
                self.$field += n;
            }
            #[cfg(feature = "disabled")]
            let _ = n;
        }
    };
}

impl SearchStats {
    recorder!(
        /// Records `n` settled vertices.
        settle, settled);
    recorder!(
        /// Records `n` attempted relaxations.
        relax, relaxed);
    recorder!(
        /// Records `n` scalar PLF evaluations.
        eval_scalar, plf_evals_scalar);
    recorder!(
        /// Records `n` batched PLF evaluations.
        eval_batched, plf_evals_batched);
    recorder!(
        /// Records `n` lower-bound prunes.
        prune, minbound_prunes);
    recorder!(
        /// Records `n` corridor kills.
        corridor_kill, corridor_kills);
    recorder!(
        /// Records `n` heap pushes.
        heap_push, heap_pushes);

    /// Resets every field (start of a query).
    #[inline(always)]
    pub fn reset(&mut self) {
        *self = SearchStats::default();
    }

    /// Returns the current totals and resets (end of a query).
    #[inline(always)]
    pub fn take(&mut self) -> SearchStats {
        std::mem::take(self)
    }

    /// Adds another query's totals into this accumulator.
    pub fn merge(&mut self, other: &SearchStats) {
        self.settled += other.settled;
        self.relaxed += other.relaxed;
        self.plf_evals_scalar += other.plf_evals_scalar;
        self.plf_evals_batched += other.plf_evals_batched;
        self.minbound_prunes += other.minbound_prunes;
        self.corridor_kills += other.corridor_kills;
        self.heap_pushes += other.heap_pushes;
    }
}

/// A single query's trace: its search counters plus wall time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryTrace {
    pub stats: SearchStats,
    /// Wall time of the query in nanoseconds.
    pub nanos: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorders_accumulate_and_take_resets() {
        let mut st = SearchStats::default();
        st.settle(2);
        st.relax(10);
        st.heap_push(3);
        if crate::ENABLED {
            assert_eq!(st.settled, 2);
            assert_eq!(st.relaxed, 10);
            assert_eq!(st.heap_pushes, 3);
        } else {
            assert_eq!(st, SearchStats::default());
        }
        let taken = st.take();
        assert_eq!(st, SearchStats::default());
        assert_eq!(taken.settled, if crate::ENABLED { 2 } else { 0 });
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = SearchStats {
            settled: 1,
            relaxed: 2,
            plf_evals_scalar: 3,
            plf_evals_batched: 4,
            minbound_prunes: 5,
            corridor_kills: 6,
            heap_pushes: 7,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.settled, 2);
        assert_eq!(a.corridor_kills, 12);
        assert_eq!(a.heap_pushes, 14);
    }
}
