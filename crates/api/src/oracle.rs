//! The non-index TD-Dijkstra baseline behind the [`RoutingIndex`] trait.

use td_dijkstra::{
    profile_search_to, shortest_path_cost_frozen_with, shortest_path_frozen_with, DijkstraScratch,
};
use td_graph::{FrozenGraph, Path, TdGraph, VertexId};
use td_plf::Plf;

#[allow(unused_imports)] // rustdoc link
use crate::index::RoutingIndex;

/// The TD-Dijkstra "index": no precomputation, every query searched from
/// scratch on the input graph. This is the paper's non-index baseline and
/// the workspace's correctness oracle; wrapping it behind [`RoutingIndex`]
/// lets harnesses and conformance tests treat it like any other backend.
///
/// The graph is frozen into the CSR/arena layout at construction (the only
/// "build" this backend has), so scalar queries run on flat adjacency and
/// contiguous breakpoints with per-edge `min_cost` pruning.
pub struct DijkstraOracle {
    graph: TdGraph,
    frozen: FrozenGraph,
}

impl DijkstraOracle {
    /// Wraps `graph`, freezing its CSR/arena query view (a single linear
    /// copy; there is nothing else to build).
    pub fn new(graph: TdGraph) -> DijkstraOracle {
        let frozen = graph.freeze();
        DijkstraOracle { graph, frozen }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// The frozen CSR/arena view scalar queries run on.
    pub fn frozen(&self) -> &FrozenGraph {
        &self.frozen
    }

    /// Travel cost query by scalar TD-Dijkstra on the frozen layout.
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        shortest_path_cost_frozen_with(&mut DijkstraScratch::default(), &self.frozen, s, d, t)
    }

    /// Cost function query by a full profile search from `s`.
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        profile_search_to(&self.graph, s, |v| v == d).dist[d as usize].clone()
    }

    /// Travel cost and path by scalar TD-Dijkstra with parent tracking.
    pub fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        shortest_path_frozen_with(&mut DijkstraScratch::default(), &self.frozen, s, d, t)
    }

    /// The oracle stores no precomputed index structures; its working set is
    /// the frozen CSR/arena view of the input graph, reported here so the
    /// uniform `memory_bytes > 0` accounting holds for every backend.
    pub fn memory_bytes(&self) -> usize {
        self.frozen.heap_bytes()
    }
}

/// Snapshot persistence: the oracle's only independent state is the input
/// graph. The frozen CSR/arena view is always exactly `graph.freeze()` and
/// never mutated, so it is **not** persisted — loading re-runs the same
/// deterministic linear copy, which halves the snapshot and leaves no
/// derived data in the file for a CRC-valid edit to desynchronise.
impl td_store::Persist for DijkstraOracle {
    fn write_into<W: std::io::Write>(&self, w: &mut W) -> Result<(), td_store::StoreError> {
        self.graph.write_into(w)
    }

    fn read_from<R: std::io::Read>(r: &mut R) -> Result<DijkstraOracle, td_store::StoreError> {
        Ok(DijkstraOracle::new(TdGraph::read_from(r)?))
    }
}

// Compile-time pin: the oracle is shared read-only across query threads.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<DijkstraOracle>()
};
