//! The non-index TD-Dijkstra baseline behind the [`RoutingIndex`] trait.

use td_dijkstra::{profile_search_to, shortest_path, shortest_path_cost};
use td_graph::{Path, TdGraph, VertexId};
use td_plf::Plf;

#[allow(unused_imports)] // rustdoc link
use crate::index::RoutingIndex;

/// The TD-Dijkstra "index": no precomputation, every query searched from
/// scratch on the input graph. This is the paper's non-index baseline and
/// the workspace's correctness oracle; wrapping it behind [`RoutingIndex`]
/// lets harnesses and conformance tests treat it like any other backend.
pub struct DijkstraOracle {
    graph: TdGraph,
}

impl DijkstraOracle {
    /// Wraps `graph`; there is nothing to build.
    pub fn new(graph: TdGraph) -> DijkstraOracle {
        DijkstraOracle { graph }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// Travel cost query by scalar TD-Dijkstra.
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        shortest_path_cost(&self.graph, s, d, t)
    }

    /// Cost function query by a full profile search from `s`.
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        profile_search_to(&self.graph, s, |v| v == d).dist[d as usize].clone()
    }

    /// Travel cost and path by scalar TD-Dijkstra with parent tracking.
    pub fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        shortest_path(&self.graph, s, d, t)
    }

    /// The oracle stores no index structures; its only memory is the shared
    /// input graph's weight functions, reported here so the uniform
    /// `memory_bytes > 0` accounting holds for every backend.
    pub fn memory_bytes(&self) -> usize {
        self.graph.weight_bytes()
    }
}
