//! Backend-generic conformance suite.
//!
//! [`check_backend`] drives one [`Backend`] through every trait obligation
//! on a given graph and workload:
//!
//! 1. `query_cost` agrees with the TD-Dijkstra oracle;
//! 2. `query_profile` evaluated at the departure time agrees with
//!    `query_cost` (and with the oracle);
//! 3. `query_path` returns a valid path whose replayed cost equals the
//!    reported cost, which in turn equals the oracle's;
//! 4. `memory_bytes() > 0` and `build_stats()` is sane;
//! 5. a reused [`QuerySession`] answers identically to per-call fresh
//!    sessions, for all three query kinds;
//! 6. `query_many` matches one-at-a-time `query_cost`;
//! 7. concurrent agreement: the same batch answered on 1 worker and on N
//!    worker threads (shared index, pooled scratch) is **bit-identical**
//!    ([`check_concurrent_agreement`]);
//! 8. snapshot round-trip: saving the index as a `.tdx` stream and loading
//!    it back yields an index answering cost, profile and path queries
//!    **bit-identically** ([`check_snapshot_roundtrip`]);
//! 9. bounded queries honour the degradation ladder: under every budget,
//!    `query_cost_bounded` either answers **bit-identically** to
//!    `query_cost`, or returns a flagged interval containing the exact
//!    answer, or a typed error — never an unflagged wrong exact claim
//!    ([`check_bounded_queries`]);
//! 10. the corridor-bounded profile searches — one-to-all rails and the
//!     targeted `s → d` variant — are **value-identical** to the unbounded
//!     label-correcting oracle on the union probe grid
//!     ([`check_corridor_profiles`]).
//!
//! The suite is instantiated for every backend in this crate's tests and is
//! public so downstream crates can run it against new backends.

use crate::{
    build_index, Backend, BoundedAnswer, IndexConfig, ParallelExecutor, QueryBudget, QueryError,
    QuerySession, RoutingIndex,
};
use td_graph::{TdGraph, VertexId};

/// Absolute tolerance for cost comparisons. TD-G-tree assembles answers
/// from refined PLF matrices, which accumulate slightly more float error
/// than the sweep-based backends; 1e-4 seconds is far below anything a
/// travel-time consumer can observe.
pub const COST_EPS: f64 = 1e-4;

fn assert_opt_close(name: &str, ctx: &str, want: Option<f64>, got: Option<f64>) {
    match (want, got) {
        (Some(a), Some(b)) => assert!(
            (a - b).abs() < COST_EPS,
            "{name} {ctx}: expected {a}, got {b}"
        ),
        (None, None) => {}
        other => panic!("{name} {ctx}: reachability disagreement {other:?}"),
    }
}

/// Runs the full conformance suite for `backend` over `graph` and the
/// `(source, destination, depart)` workload. Panics on any violation.
pub fn check_backend(
    backend: Backend,
    graph: &TdGraph,
    cfg: &IndexConfig,
    queries: &[(VertexId, VertexId, f64)],
) {
    let index = build_index(graph.clone(), backend, cfg);
    let oracle = crate::DijkstraOracle::new(graph.clone());
    let name = index.backend_name();

    // 4. Accounting obligations.
    assert!(
        index.memory_bytes() > 0,
        "{name}: memory_bytes() must be positive"
    );
    let stats = index.build_stats();
    assert!(
        stats.construction_secs >= 0.0,
        "{name}: negative construction time"
    );
    assert_eq!(
        index.graph().num_vertices(),
        graph.num_vertices(),
        "{name}: graph() must expose the input graph"
    );

    // 1–3. Query agreement with the oracle, via a reused session (5) and
    // fresh per-call state simultaneously.
    let mut session = QuerySession::new(index.as_ref());
    for &(s, d, t) in queries {
        let ctx = format!("s={s} d={d} t={t}");
        let want = oracle.query_cost(s, d, t);

        let fresh = index.query_cost(s, d, t);
        assert_opt_close(name, &ctx, want, fresh);
        let reused = session.query_cost(s, d, t);
        assert_opt_close(name, &ctx, fresh, reused);

        let profile = session.query_profile(s, d);
        assert_eq!(
            profile.is_some(),
            want.is_some(),
            "{name} {ctx}: profile reachability disagrees with cost"
        );
        if let Some(f) = &profile {
            assert_opt_close(name, &format!("{ctx} (profile)"), want, Some(f.eval(t)));
        }

        match (session.query_path(s, d, t), want) {
            (Some((cost, path)), Some(w)) => {
                assert!(
                    (cost - w).abs() < COST_EPS,
                    "{name} {ctx}: path cost {cost} vs oracle {w}"
                );
                assert_eq!(path.source(), s, "{name} {ctx}: path source");
                assert_eq!(path.destination(), d, "{name} {ctx}: path destination");
                assert!(path.is_valid(graph), "{name} {ctx}: invalid path");
                let replay = path.cost(graph, t).expect("valid path replays");
                assert!(
                    (replay - cost).abs() < COST_EPS,
                    "{name} {ctx}: reported {cost} vs replay {replay}"
                );
            }
            (None, None) => {}
            other => panic!(
                "{name} {ctx}: path reachability disagreement (got={}, want={})",
                other.0.is_some(),
                other.1.is_some()
            ),
        }
    }

    // 6. Batch entry point matches singles.
    let batch = session.query_many(queries.iter().copied());
    assert_eq!(batch.len(), queries.len());
    for (&(s, d, t), got) in queries.iter().zip(&batch) {
        let single = index.query_cost(s, d, t);
        assert_opt_close(name, &format!("batch s={s} d={d} t={t}"), single, *got);
    }

    // 7. Concurrent agreement across thread counts.
    check_concurrent_agreement(index.as_ref(), queries);

    // 8. Snapshot round-trip is bit-identical.
    check_snapshot_roundtrip(index.as_ref(), queries);

    // 9. Bounded queries walk the degradation ladder soundly.
    check_bounded_queries(index.as_ref(), queries);

    // 10. Corridor-bounded profile searches (one-to-all and targeted) are
    // value-exact against the unbounded oracle.
    check_corridor_profiles(graph, queries);
}

/// Conformance step 10: the corridor-bounded profile search
/// ([`td_dijkstra::profile_search_frozen_corridor`]) must return **exact**
/// labels: identical reachability, and value-identical envelopes at every
/// breakpoint of *either* representation, every midpoint between them, and
/// both rays. The corridor may only skip compounds whose min bound clears
/// the scalar upper rail by more than ε — such candidates never touch any
/// envelope, so pruning cannot change *what* the search computes.
///
/// The comparison is on function **values**, not interpolation points:
/// both searches simplify with the ε-tolerant collinearity rule, and
/// merging a provably-hopeless candidate (which the corridor skips and the
/// baseline performs) subdivides segments, so near-flat regions may keep
/// tolerance-equal but differently-anchored representations. The values
/// agree to float noise (~1e-14 observed); [`COST_EPS`] is the assertion
/// bound, consistent with the rest of the suite.
///
/// The *targeted* search
/// ([`td_dijkstra::profile_search_frozen_corridor_to`]) is checked on every
/// `(s, d)` pair of the workload under the same contract: its destination
/// label must be value-identical to the unbounded one-to-all oracle's, and
/// its reachability verdict must agree.
pub fn check_corridor_profiles(graph: &TdGraph, queries: &[(VertexId, VertexId, f64)]) {
    let fg = graph.freeze();
    let mut sources: Vec<VertexId> = queries.iter().map(|&(s, _, _)| s).collect();
    sources.sort_unstable();
    sources.dedup();
    for s in sources {
        let want = td_dijkstra::profile_search_frozen(graph, &fg, s);
        let (got, stats) = td_dijkstra::profile_search_frozen_corridor(graph, &fg, s);
        assert_eq!(
            want.dist.len(),
            got.dist.len(),
            "corridor s={s}: label count diverges"
        );
        for (v, (w, g)) in want.dist.iter().zip(&got.dist).enumerate() {
            let ctx = format!(
                "corridor s={s} v={v} (skipped={}, relaxed={})",
                stats.skipped, stats.relaxed
            );
            match (w, g) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_plf_value_identical(a, b, &ctx),
                other => panic!("{ctx}: reachability disagreement {other:?}"),
            }
        }
        // Targeted s → d corridor search against the same oracle, on every
        // destination the workload actually queries from this source.
        for &(qs, d, _) in queries.iter().filter(|&&(qs, _, _)| qs == s) {
            let (label, tstats) = td_dijkstra::profile_search_frozen_corridor_to(graph, &fg, qs, d);
            let ctx = format!(
                "targeted corridor s={qs} d={d} (skipped={}, relaxed={})",
                tstats.skipped, tstats.relaxed
            );
            match (&want.dist[d as usize], &label) {
                (None, None) => {}
                (Some(a), Some(b)) => assert_plf_value_identical(a, b, &ctx),
                other => panic!("{ctx}: reachability disagreement {other:?}"),
            }
        }
    }
}

/// Value-identity on the union probe grid: every breakpoint of either
/// representation, every midpoint between adjacent probes, and both rays.
fn assert_plf_value_identical(a: &td_plf::Plf, b: &td_plf::Plf, ctx: &str) {
    let mut ts: Vec<f64> = a.points().iter().chain(b.points()).map(|p| p.t).collect();
    ts.sort_unstable_by(f64::total_cmp);
    ts.dedup();
    let mut probes = vec![ts[0] - 1.0, ts[ts.len() - 1] + 1.0];
    probes.extend_from_slice(&ts);
    probes.extend(ts.windows(2).map(|w| 0.5 * (w[0] + w[1])));
    for &t in &probes {
        let (va, vb) = (a.eval(t), b.eval(t));
        assert!(
            (va - vb).abs() < COST_EPS,
            "{ctx}: value diverges at t={t}: {va} vs {vb}"
        );
    }
}

/// Conformance step 9: [`RoutingIndex::query_cost_bounded`] under a sweep
/// of budgets — tiny to unlimited settle caps plus an already-expired
/// deadline — must never make an unflagged wrong claim. Exact answers are
/// **bit-identical** to `query_cost`; approximate answers are flagged
/// intervals containing the exact cost (and never claim unreachability);
/// errors are typed. Invalid inputs surface as
/// [`QueryError::InvalidQuery`], never panics.
pub fn check_bounded_queries(index: &dyn RoutingIndex, queries: &[(VertexId, VertexId, f64)]) {
    let name = index.backend_name();
    let budgets = [
        QueryBudget::UNLIMITED,
        QueryBudget::settles(0),
        QueryBudget::settles(1),
        QueryBudget::settles(16),
        QueryBudget::settles(256),
        QueryBudget::settles(4096),
        QueryBudget::timeout(std::time::Duration::ZERO),
    ];
    for &(s, d, t) in queries {
        let exact = index.query_cost(s, d, t);
        for (i, budget) in budgets.iter().enumerate() {
            let ctx = format!("s={s} d={d} t={t} budget#{i}");
            match index.query_cost_bounded(s, d, t, budget) {
                Ok(answer) => {
                    assert!(
                        answer.is_consistent_with(exact, COST_EPS),
                        "{name} {ctx}: {answer:?} inconsistent with exact {exact:?}"
                    );
                    if let BoundedAnswer::Approximate { lower, upper } = answer {
                        // Interval well-formedness, independent of the
                        // exact answer: the lower bound is a finite
                        // admissible bound (a witnessed upper in
                        // particular must sit on a real interval), and
                        // the bracket is never inverted.
                        assert!(
                            lower.is_finite() && lower >= 0.0,
                            "{name} {ctx}: lower bound {lower} is not finite and non-negative"
                        );
                        assert!(
                            lower <= upper,
                            "{name} {ctx}: inverted interval [{lower}, {upper}]"
                        );
                    }
                    if let BoundedAnswer::Exact(cost) = answer {
                        assert_eq!(
                            cost.map(f64::to_bits),
                            exact.map(f64::to_bits),
                            "{name} {ctx}: exact claim diverges from query_cost"
                        );
                    }
                }
                // Label/matrix backends under an expired deadline: refusal
                // is the honest answer when they cannot degrade.
                Err(QueryError::BudgetExhausted) => {}
                Err(e) => panic!("{name} {ctx}: unexpected error: {e}"),
            }
        }
        // An unlimited budget must never degrade.
        let answer = index
            .query_cost_bounded(s, d, t, &QueryBudget::UNLIMITED)
            .unwrap_or_else(|e| panic!("{name}: unlimited budget errored: {e}"));
        assert!(
            answer.is_exact(),
            "{name} s={s} d={d}: unlimited budget degraded to {answer:?}"
        );
    }
    // Out-of-range endpoints and unusable departure times are typed.
    let n = index.graph().num_vertices() as VertexId;
    for (s, d, t) in [(n, 0, 0.0), (0, n + 7, 0.0), (0, 0, f64::NAN), (0, 0, -1.0)] {
        match index.query_cost_bounded(s, d, t, &QueryBudget::UNLIMITED) {
            Err(QueryError::InvalidQuery(_)) => {}
            other => panic!("{name} s={s} d={d} t={t}: expected InvalidQuery, got {other:?}"),
        }
    }
}

/// Conformance step 8: `load(save(index))` must answer the whole workload
/// **bit-identically** — not merely within tolerance. The snapshot carries
/// the exact frozen arrays the query loops walk, so a loaded index's float
/// operations replay the fresh index's instruction-for-instruction; any
/// divergence means the format dropped or reordered state.
pub fn check_snapshot_roundtrip(index: &dyn RoutingIndex, queries: &[(VertexId, VertexId, f64)]) {
    let name = index.backend_name();
    let mut buf = Vec::new();
    crate::save_index_to(index, &mut buf)
        .unwrap_or_else(|e| panic!("{name}: snapshot save failed: {e}"));
    let (_, loaded) = crate::load_index_from(&mut buf.as_slice())
        .unwrap_or_else(|e| panic!("{name}: snapshot load failed: {e}"));
    assert_eq!(loaded.backend_name(), name, "snapshot changed the backend");
    assert_eq!(
        loaded.build_stats(),
        index.build_stats(),
        "{name}: snapshot changed the build statistics"
    );
    assert!(loaded.memory_bytes() > 0);
    assert_eq!(
        loaded.graph().num_edges(),
        index.graph().num_edges(),
        "{name}: snapshot changed the graph"
    );
    let mut session = QuerySession::new(loaded.as_ref());
    for &(s, d, t) in queries {
        let ctx = format!("s={s} d={d} t={t}");
        assert_eq!(
            index.query_cost(s, d, t).map(f64::to_bits),
            loaded.query_cost(s, d, t).map(f64::to_bits),
            "{name} {ctx}: loaded cost diverges"
        );
        assert_eq!(
            index.query_profile(s, d),
            loaded.query_profile(s, d),
            "{name} {ctx}: loaded profile diverges"
        );
        match (index.query_path(s, d, t), loaded.query_path(s, d, t)) {
            (Some((c1, p1)), Some((c2, p2))) => {
                assert_eq!(
                    c1.to_bits(),
                    c2.to_bits(),
                    "{name} {ctx}: loaded path cost diverges"
                );
                assert_eq!(
                    p1.vertices, p2.vertices,
                    "{name} {ctx}: loaded path diverges"
                );
            }
            (None, None) => {}
            other => panic!(
                "{name} {ctx}: path reachability diverges after reload (fresh={}, loaded={})",
                other.0.is_some(),
                other.1.is_some()
            ),
        }
        // The loaded index works through sessions/scratch too.
        assert_eq!(
            loaded.query_cost(s, d, t).map(f64::to_bits),
            session.query_cost(s, d, t).map(f64::to_bits),
            "{name} {ctx}: loaded session diverges"
        );
    }
}

/// Conformance step 7: the same seeded query batch answered by one worker
/// and by N workers sharing `index` must produce **bit-identical** results
/// — not merely within tolerance. Queries read only frozen state, so thread
/// count and work-stealing order must be unobservable in the answers.
pub fn check_concurrent_agreement(index: &dyn RoutingIndex, queries: &[(VertexId, VertexId, f64)]) {
    let name = index.backend_name();
    let bits =
        |r: &[Option<f64>]| -> Vec<Option<u64>> { r.iter().map(|c| c.map(f64::to_bits)).collect() };
    let single = ParallelExecutor::new(index, 1).query_batch(queries);
    for threads in [2, 4] {
        let mut exec = ParallelExecutor::new(index, threads);
        for round in 0..2 {
            // Round 1 reruns on warmed scratches: reuse must not change bits.
            let parallel = exec.query_batch(queries);
            assert_eq!(
                bits(&single),
                bits(&parallel),
                "{name}: {threads}-thread batch (round {round}) diverges from single-thread"
            );
        }
    }
}
