//! Concurrent serving: [`ParallelExecutor`] and the epoch/double-buffer
//! [`LiveIndex`].
//!
//! Every built index is immutable at query time and `Send + Sync` (a
//! supertrait obligation of [`RoutingIndex`]), so one index — typically an
//! `Arc<dyn RoutingIndex>` — can be shared across any number of threads.
//! What each thread needs privately is scratch space. [`ParallelExecutor`]
//! packages that pattern: a pool of per-worker [`SessionScratch`] states,
//! reused across batches, driven over a query slice by an atomic cursor
//! under [`std::thread::scope`]. No work-stealing deques are needed — the
//! cursor hands out small contiguous chunks, so fast workers naturally take
//! more of the slice and per-query results land at their input positions.
//!
//! [`LiveIndex`] adds the writer side: two identical copies of an
//! [`IncrementalIndex`]. Readers clone an [`Arc`] snapshot of the *active*
//! copy and query it lock-free; [`LiveIndex::apply`] repairs the *standby*
//! copy with [`IncrementalIndex::update_edges`], swaps it in atomically
//! (bumping the epoch), then brings the retired copy level once the readers
//! still holding it drain. Queries never observe a half-updated index and
//! never block on the repair.

use crate::index::{IncrementalIndex, RoutingIndex};
use crate::session::SessionScratch;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use td_core::UpdateStats;
use td_graph::{Path, VertexId};
use td_plf::Plf;

/// A `(source, destination, departure)` travel-cost query.
pub type CostQuery = (VertexId, VertexId, f64);

/// Shared write access to disjoint result slots. The atomic cursor in
/// [`ParallelExecutor::run`] hands each index to exactly one worker, so
/// writes never alias; the wrapper only exists to move the raw pointer
/// across the scoped-thread boundary.
struct ResultSlots<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: workers write disjoint indices (enforced by the fetch_add cursor)
// into an initialised slice that outlives the scope; `T: Send` values move
// to the writing thread.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(slice: &mut [T]) -> ResultSlots<T> {
        ResultSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i` must be handed out by the batch cursor to this worker only.
    #[allow(unsafe_code)]
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

/// A pool of reusable [`QuerySession`](crate::QuerySession)-style scratch
/// states answering query batches on `N` threads.
///
/// The executor owns one [`SessionScratch`] per worker; batches are striped
/// over the workers by an atomic cursor, so a slow query (long-range, cold
/// cache) does not stall the rest of the slice. Scratches persist across
/// [`ParallelExecutor::query_batch`] calls — after the first few batches the
/// cost path performs **zero heap allocations per query in every worker**,
/// exactly like a warmed single-threaded session.
///
/// ```
/// # use td_api::{build_index, Backend, IndexConfig, ParallelExecutor};
/// # let mut g = td_graph::TdGraph::with_vertices(2);
/// # g.add_edge(0, 1, td_plf::Plf::constant(60.0)).unwrap();
/// # g.add_edge(1, 0, td_plf::Plf::constant(45.0)).unwrap();
/// let index = build_index(g, Backend::TdBasic, &IndexConfig::default());
/// let mut exec = ParallelExecutor::new(index.as_ref(), 4);
/// let costs = exec.query_batch(&[(0, 1, 0.0), (1, 0, 3600.0)]);
/// assert_eq!(costs, vec![Some(60.0), Some(45.0)]);
/// ```
pub struct ParallelExecutor<'a, I: RoutingIndex + ?Sized> {
    index: &'a I,
    workers: Vec<SessionScratch>,
}

impl<'a, I: RoutingIndex + ?Sized> ParallelExecutor<'a, I> {
    /// An executor over `index` with `threads` workers (0 = all cores).
    pub fn new(index: &'a I, threads: usize) -> ParallelExecutor<'a, I> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        ParallelExecutor {
            index,
            workers: (0..threads).map(|_| index.new_scratch()).collect(),
        }
    }

    /// The shared index.
    pub fn index(&self) -> &'a I {
        self.index
    }

    /// Number of pooled workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(scratch, i)` for every `i in 0..n`, fanned out over the
    /// worker pool, writing each result to `out[i]`.
    #[allow(unsafe_code)]
    fn run<T, F>(&mut self, n: usize, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut SessionScratch, usize) -> T + Sync,
    {
        debug_assert_eq!(out.len(), n);
        if self.workers.len() <= 1 || n <= 1 {
            // Inline fast path: no reason to pay a thread spawn.
            let scratch = &mut self.workers[0];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(scratch, i);
            }
            return;
        }
        // Chunked atomic cursor: coarse enough to keep contention off the
        // hot path, fine enough that stragglers rebalance.
        let chunk = (n / (self.workers.len() * 8)).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let slots = ResultSlots::new(out);
        let (cursor, slots, f) = (&cursor, &slots, &f);
        std::thread::scope(|scope| {
            for scratch in self.workers.iter_mut() {
                scope.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        // SAFETY: the cursor hands [start, start+chunk) to
                        // this worker alone; `i` is written exactly once.
                        unsafe { slots.write(i, f(scratch, i)) };
                    }
                });
            }
        });
    }

    /// Answers a batch of travel-cost queries on all workers. Results are in
    /// input order and bit-identical to a single-threaded
    /// [`QuerySession`](crate::QuerySession) run.
    pub fn query_batch(&mut self, queries: &[CostQuery]) -> Vec<Option<f64>> {
        let mut out = Vec::new();
        self.query_batch_into(queries, &mut out);
        out
    }

    /// [`ParallelExecutor::query_batch`] writing into a caller-owned buffer,
    /// so steady-state serving with a constant batch size allocates nothing.
    pub fn query_batch_into(&mut self, queries: &[CostQuery], out: &mut Vec<Option<f64>>) {
        out.clear();
        out.resize(queries.len(), None);
        let index = self.index;
        self.run(queries.len(), out, |scratch, i| {
            let (s, d, t) = queries[i];
            index.query_cost_in(scratch, s, d, t)
        });
    }

    /// Answers a batch of cost-function (profile) queries on all workers.
    pub fn profile_batch(&mut self, pairs: &[(VertexId, VertexId)]) -> Vec<Option<Plf>> {
        let mut out = vec![None; pairs.len()];
        let index = self.index;
        self.run(pairs.len(), &mut out, |scratch, i| {
            let (s, d) = pairs[i];
            index.query_profile_in(scratch, s, d)
        });
        out
    }

    /// Answers a batch of path queries on all workers.
    pub fn path_batch(&mut self, queries: &[CostQuery]) -> Vec<Option<(f64, Path)>> {
        let mut out = vec![None; queries.len()];
        let index = self.index;
        self.run(queries.len(), &mut out, |scratch, i| {
            let (s, d, t) = queries[i];
            index.query_path_in(scratch, s, d, t)
        });
        out
    }
}

/// An incrementally-updatable index served live: readers query immutable
/// snapshots while a writer repairs a second copy, swapped in atomically
/// between update batches.
///
/// The double buffer holds two independent, identical copies of the index.
/// [`LiveIndex::snapshot`] hands readers an [`Arc`] of the **active** copy —
/// a lock is held only for the clone of the `Arc`, never across a query.
/// [`LiveIndex::apply`]:
///
/// 1. repairs the **standby** copy with [`IncrementalIndex::update_edges`]
///    (readers are unaffected — they hold the active copy);
/// 2. swaps standby and active and bumps the epoch (atomic with respect to
///    [`LiveIndex::snapshot_with_epoch`]);
/// 3. levels the retired copy for the next batch: if no reader still holds
///    it, the same changes are replayed onto it (cheap — edge-weight
///    changes are absolute functions, so replaying the batch onto the copy
///    that is exactly one batch behind makes the copies identical);
///    otherwise the retired copy is abandoned to its readers and replaced
///    by a clone of the just-published active copy.
///
/// Writers are serialised by the standby lock. Writers never block readers,
/// and readers never block writers — a snapshot held forever (even by the
/// writer's own thread, across `apply`) costs one index clone, not a stall.
pub struct LiveIndex<I> {
    active: Mutex<Arc<I>>,
    standby: Mutex<Arc<I>>,
    epoch: AtomicU64,
}

impl<I: Clone> LiveIndex<I> {
    /// Wraps `index`, cloning it once for the standby buffer. Epoch 0 is the
    /// as-built state.
    pub fn new(index: I) -> LiveIndex<I> {
        LiveIndex {
            standby: Mutex::new(Arc::new(index.clone())),
            active: Mutex::new(Arc::new(index)),
            epoch: AtomicU64::new(0),
        }
    }
}

impl<I> LiveIndex<I> {
    /// The current epoch: the number of applied update batches.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// An immutable snapshot of the active index. The snapshot stays valid —
    /// and frozen at its epoch's edge weights — for as long as the `Arc` is
    /// held, across any number of concurrent [`LiveIndex::apply`] calls.
    pub fn snapshot(&self) -> Arc<I> {
        self.active.lock().expect("reader lock").clone()
    }

    /// [`LiveIndex::snapshot`] paired with the epoch it belongs to. The two
    /// are read under one lock, so a concurrent swap cannot tear the pair.
    pub fn snapshot_with_epoch(&self) -> (u64, Arc<I>) {
        let guard = self.active.lock().expect("reader lock");
        (self.epoch.load(Ordering::Acquire), guard.clone())
    }
}

impl<I: IncrementalIndex + Clone> LiveIndex<I> {
    /// Applies one batch of absolute edge-weight changes, making them
    /// visible to new snapshots atomically. Returns the standby repair's
    /// statistics (levelling the retired copy is not double-counted).
    pub fn apply(&self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats {
        let mut standby = self.standby.lock().expect("writer lock");
        // The standby copy is always unique: readers clone only the active
        // Arc, and the tail of the previous `apply` left this slot with
        // either a drained retired copy or a fresh clone.
        let stats = Arc::get_mut(&mut standby)
            .expect("standby is never shared")
            .update_edges(changes);
        let published = {
            let mut active = self.active.lock().expect("reader lock");
            std::mem::swap(&mut *active, &mut *standby);
            self.epoch.fetch_add(1, Ordering::Release);
            active.clone()
        };
        // Level the retired copy for the next batch. No reference can
        // *appear* between the check and the mutation: this slot is
        // unreachable from `snapshot`, so the strong count only falls.
        match Arc::get_mut(&mut standby) {
            Some(retired) => {
                retired.update_edges(changes);
            }
            None => {
                // In-flight readers still hold the retired epoch; leave it
                // to them and start the next double buffer from the state
                // just published.
                *standby = Arc::new((*published).clone());
            }
        }
        stats
    }
}

// Compile-time pin: a live index (both buffers) is shared across reader and
// writer threads; `Sync` for any `Send + Sync` inner index.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<LiveIndex<crate::AStarChIndex>>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_index, Backend, IndexConfig, QuerySession};
    use td_graph::TdGraph;

    fn tiny_graph() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        for (u, v, w) in [
            (0u32, 1u32, 60.0),
            (1, 2, 30.0),
            (2, 3, 45.0),
            (3, 0, 90.0),
            (1, 0, 60.0),
            (2, 1, 30.0),
            (3, 2, 45.0),
            (0, 3, 90.0),
        ] {
            g.add_edge(u, v, Plf::constant(w)).unwrap();
        }
        g
    }

    #[test]
    fn executor_matches_session_on_every_worker_count() {
        let index = build_index(tiny_graph(), Backend::TdBasic, &IndexConfig::default());
        let queries: Vec<CostQuery> = (0..4)
            .flat_map(|s| (0..4).map(move |d| (s, d, 3600.0 * (s + d) as f64)))
            .collect();
        let mut session = QuerySession::new(index.as_ref());
        let want = session.query_many(queries.iter().copied());
        for threads in [1, 2, 3, 8] {
            let mut exec = ParallelExecutor::new(index.as_ref(), threads);
            assert_eq!(exec.num_workers(), threads);
            // Twice: the second batch runs on warmed scratches.
            assert_eq!(exec.query_batch(&queries), want, "{threads} threads");
            assert_eq!(exec.query_batch(&queries), want, "{threads} threads warm");
        }
    }

    #[test]
    fn executor_handles_empty_and_unit_batches() {
        let index = build_index(tiny_graph(), Backend::TdBasic, &IndexConfig::default());
        let mut exec = ParallelExecutor::new(index.as_ref(), 4);
        assert_eq!(exec.query_batch(&[]), Vec::<Option<f64>>::new());
        assert_eq!(exec.query_batch(&[(0, 2, 0.0)]), vec![Some(90.0)]);
    }

    #[test]
    fn live_index_snapshots_are_stable_across_apply() {
        use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
        let g = tiny_graph();
        let index = TdTreeIndex::build(
            g,
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 500 },
                track_supports: true,
                ..Default::default()
            },
        );
        let live = LiveIndex::new(index);
        let (e0, before) = live.snapshot_with_epoch();
        assert_eq!(e0, 0);
        let old_cost = before.query_cost(0, 2, 0.0).unwrap();

        live.apply(&[(0, 1, Plf::constant(600.0))]);
        assert_eq!(live.epoch(), 1);
        // The held snapshot still answers with pre-update weights...
        assert_eq!(before.query_cost(0, 2, 0.0).unwrap(), old_cost);
        // ...while a fresh snapshot sees the jam (0->1->2 got slower; the
        // alternative 0->3->2 now wins at 90+45).
        let after = live.snapshot();
        let new_cost = after.query_cost(0, 2, 0.0).unwrap();
        assert!(new_cost > old_cost);
        assert!((new_cost - 135.0).abs() < 1e-9);

        // A second batch exercises the levelled retired copy.
        live.apply(&[(0, 1, Plf::constant(60.0))]);
        assert_eq!(live.epoch(), 2);
        assert_eq!(live.snapshot().query_cost(0, 2, 0.0).unwrap(), old_cost);
    }
}
