//! Concurrent serving: [`ParallelExecutor`] and the epoch/double-buffer
//! [`LiveIndex`].
//!
//! Every built index is immutable at query time and `Send + Sync` (a
//! supertrait obligation of [`RoutingIndex`]), so one index — typically an
//! `Arc<dyn RoutingIndex>` — can be shared across any number of threads.
//! What each thread needs privately is scratch space. [`ParallelExecutor`]
//! packages that pattern: a pool of per-worker [`SessionScratch`] states,
//! reused across batches, driven over a query slice by an atomic cursor
//! under [`std::thread::scope`]. No work-stealing deques are needed — the
//! cursor hands out small contiguous chunks, so fast workers naturally take
//! more of the slice and per-query results land at their input positions.
//!
//! [`LiveIndex`] adds the writer side: two identical copies of an
//! [`IncrementalIndex`]. Readers clone an [`Arc`] snapshot of the *active*
//! copy and query it lock-free; [`LiveIndex::apply`] repairs the *standby*
//! copy with [`IncrementalIndex::update_edges`], swaps it in atomically
//! (bumping the epoch), then brings the retired copy level once the readers
//! still holding it drain. Queries never observe a half-updated index and
//! never block on the repair.

use crate::bounded::{BoundedAnswer, QueryError};
use crate::index::{IncrementalIndex, RoutingIndex};
use crate::session::SessionScratch;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use td_core::UpdateStats;
use td_dijkstra::QueryBudget;
use td_graph::{Path, VertexId};
use td_plf::Plf;

/// A `(source, destination, departure)` travel-cost query.
pub type CostQuery = (VertexId, VertexId, f64);

/// Renders a caught panic payload for a typed error. Panic messages are
/// `&str` or `String` in practice; anything else stays opaque.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Builds the replacement for a scratch torn by a panic: a fresh scratch,
/// pre-warmed by one contained probe query so its arrays are already sized
/// to the graph. Without the probe the worker's first post-panic query pays
/// the cold-start allocations a warmed pool exists to avoid (the
/// `budget_overhead` bench gates this path). If the probe itself panics
/// (a hostile index may fail deterministically on it), fall back to the
/// cold scratch — correctness first, warmth best-effort.
fn replacement_scratch<I: RoutingIndex + ?Sized>(index: &I) -> SessionScratch {
    let mut scratch = index.new_scratch();
    let n = index.graph().num_vertices();
    if n > 0 {
        let d = (n - 1) as VertexId;
        let probe = catch_unwind(AssertUnwindSafe(|| {
            index.query_cost_in(&mut scratch, 0, d, 0.0);
            index.take_search_stats(&mut scratch);
        }));
        if probe.is_err() {
            return index.new_scratch();
        }
    }
    scratch
}

/// Shared write access to disjoint result slots. The atomic cursor in
/// [`ParallelExecutor::run`] hands each index to exactly one worker, so
/// writes never alias; the wrapper only exists to move the raw pointer
/// across the scoped-thread boundary.
struct ResultSlots<T> {
    ptr: *mut T,
    len: usize,
}

// SAFETY: workers write disjoint indices (enforced by the fetch_add cursor)
// into an initialised slice that outlives the scope; `T: Send` values move
// to the writing thread.
#[allow(unsafe_code)]
unsafe impl<T: Send> Sync for ResultSlots<T> {}

impl<T> ResultSlots<T> {
    fn new(slice: &mut [T]) -> ResultSlots<T> {
        ResultSlots {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
        }
    }

    /// # Safety
    /// `i` must be handed out by the batch cursor to this worker only.
    #[allow(unsafe_code)]
    unsafe fn write(&self, i: usize, value: T) {
        debug_assert!(i < self.len);
        *self.ptr.add(i) = value;
    }
}

/// A pool of reusable [`QuerySession`](crate::QuerySession)-style scratch
/// states answering query batches on `N` threads.
///
/// The executor owns one [`SessionScratch`] per worker; batches are striped
/// over the workers by an atomic cursor, so a slow query (long-range, cold
/// cache) does not stall the rest of the slice. Scratches persist across
/// [`ParallelExecutor::query_batch`] calls — after the first few batches the
/// cost path performs **zero heap allocations per query in every worker**,
/// exactly like a warmed single-threaded session.
///
/// ```
/// # use td_api::{build_index, Backend, IndexConfig, ParallelExecutor};
/// # let mut g = td_graph::TdGraph::with_vertices(2);
/// # g.add_edge(0, 1, td_plf::Plf::constant(60.0)).unwrap();
/// # g.add_edge(1, 0, td_plf::Plf::constant(45.0)).unwrap();
/// let index = build_index(g, Backend::TdBasic, &IndexConfig::default());
/// let mut exec = ParallelExecutor::new(index.as_ref(), 4);
/// let costs = exec.query_batch(&[(0, 1, 0.0), (1, 0, 3600.0)]);
/// assert_eq!(costs, vec![Some(60.0), Some(45.0)]);
/// ```
pub struct ParallelExecutor<'a, I: RoutingIndex + ?Sized> {
    index: &'a I,
    workers: Vec<SessionScratch>,
}

impl<'a, I: RoutingIndex + ?Sized> ParallelExecutor<'a, I> {
    /// An executor over `index` with `threads` workers (0 = all cores).
    pub fn new(index: &'a I, threads: usize) -> ParallelExecutor<'a, I> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            threads
        };
        ParallelExecutor {
            index,
            workers: (0..threads).map(|_| index.new_scratch()).collect(),
        }
    }

    /// The shared index.
    pub fn index(&self) -> &'a I {
        self.index
    }

    /// Number of pooled workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(scratch, w, i)` for every `i in 0..n`, fanned out over the
    /// worker pool, writing each result to `out[i]`. `w` is the worker's
    /// stable pool index — closures use it as the metric shard so telemetry
    /// exports stay contention-free across workers.
    #[allow(unsafe_code)]
    fn run<T, F>(&mut self, n: usize, out: &mut [T], f: F)
    where
        T: Send,
        F: Fn(&mut SessionScratch, usize, usize) -> T + Sync,
    {
        debug_assert_eq!(out.len(), n);
        if self.workers.len() <= 1 || n <= 1 {
            // Inline fast path: no reason to pay a thread spawn.
            let scratch = &mut self.workers[0];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = f(scratch, 0, i);
            }
            return;
        }
        // Chunked atomic cursor: coarse enough to keep contention off the
        // hot path, fine enough that stragglers rebalance.
        let chunk = (n / (self.workers.len() * 8)).clamp(1, 64);
        let cursor = AtomicUsize::new(0);
        let slots = ResultSlots::new(out);
        let (cursor, slots, f) = (&cursor, &slots, &f);
        std::thread::scope(|scope| {
            for (w, scratch) in self.workers.iter_mut().enumerate() {
                scope.spawn(move || loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    for i in start..(start + chunk).min(n) {
                        // SAFETY: the cursor hands [start, start+chunk) to
                        // this worker alone; `i` is written exactly once.
                        unsafe { slots.write(i, f(scratch, w, i)) };
                    }
                });
            }
        });
    }

    /// Answers a batch of travel-cost queries on all workers. Results are in
    /// input order and bit-identical to a single-threaded
    /// [`QuerySession`](crate::QuerySession) run.
    pub fn query_batch(&mut self, queries: &[CostQuery]) -> Vec<Option<f64>> {
        let mut out = Vec::new();
        self.query_batch_into(queries, &mut out);
        out
    }

    /// [`ParallelExecutor::query_batch`] writing into a caller-owned buffer,
    /// so steady-state serving with a constant batch size allocates nothing.
    pub fn query_batch_into(&mut self, queries: &[CostQuery], out: &mut Vec<Option<f64>>) {
        out.clear();
        out.resize(queries.len(), None);
        let index = self.index;
        self.run(queries.len(), out, |scratch, w, i| {
            let (s, d, t) = queries[i];
            if td_obs::ENABLED {
                let (cost, trace) = index.query_cost_traced_in(scratch, s, d, t);
                td_obs::metrics().record_query(w, &trace);
                cost
            } else {
                index.query_cost_in(scratch, s, d, t)
            }
        });
    }

    /// Panic-contained [`ParallelExecutor::query_batch`]: every query is
    /// validated, then run inside [`std::panic::catch_unwind`], so one
    /// poisoned query (a backend bug, a corrupt weight) surfaces as a typed
    /// [`QueryError::Panicked`] in its own slot while the other results of
    /// the batch arrive untouched and bit-identical to a clean run. A
    /// worker whose scratch was mid-mutation when the panic unwound has it
    /// sanitized in place (generation stamps make torn state unreachable
    /// while the warmed capacity survives) or replaced with a probe-warmed
    /// fresh one, so later queries never see torn state and post-panic
    /// batches don't re-pay the warm-up allocations.
    pub fn try_query_batch(
        &mut self,
        queries: &[CostQuery],
    ) -> Vec<Result<Option<f64>, QueryError>> {
        let mut out = vec![Ok(None); queries.len()];
        let index = self.index;
        let num_vertices = index.graph().num_vertices();
        self.run(queries.len(), &mut out, |scratch, w, i| {
            let (s, d, t) = queries[i];
            if let Err(e) = crate::bounded::validate_query(num_vertices, s, d, t) {
                if td_obs::ENABLED {
                    td_obs::metrics().ladder_invalid.add_shard(w, 1);
                }
                return Err(e);
            }
            match catch_unwind(AssertUnwindSafe(|| {
                if td_obs::ENABLED {
                    let (cost, trace) = index.query_cost_traced_in(scratch, s, d, t);
                    td_obs::metrics().record_query(w, &trace);
                    cost
                } else {
                    index.query_cost_in(scratch, s, d, t)
                }
            })) {
                Ok(cost) => Ok(cost),
                Err(payload) => {
                    // The scratch may hold half-written search state:
                    // sanitize it in place (keeps the warmed capacity) or,
                    // for backends without wholesale invalidation, replace
                    // it with a probe-warmed fresh one.
                    if !scratch.try_sanitize() {
                        *scratch = replacement_scratch(index);
                    }
                    if td_obs::ENABLED {
                        td_obs::metrics().ladder_panicked.add_shard(w, 1);
                    }
                    Err(QueryError::Panicked(panic_message(payload)))
                }
            }
        });
        out
    }

    /// Budget-bounded, panic-contained batch: each query runs
    /// [`RoutingIndex::query_cost_bounded_in`] under the shared `budget`
    /// (validation and the exact → bounded → error degradation ladder
    /// included) inside the same containment as
    /// [`ParallelExecutor::try_query_batch`].
    pub fn query_batch_bounded(
        &mut self,
        queries: &[CostQuery],
        budget: &QueryBudget,
    ) -> Vec<Result<BoundedAnswer, QueryError>> {
        self.bounded_batch(queries, |_| *budget)
    }

    /// [`ParallelExecutor::query_batch_bounded`] with a budget *per slot*:
    /// `budgets[i]` bounds `queries[i]`. This is how a serving layer
    /// propagates each request's own client deadline into the search (see
    /// [`QueryBudget::tightened_to`]) while batching requests with
    /// different deadlines together.
    ///
    /// The two slices must have equal length (debug-asserted; in release the
    /// shorter prefix is served and the remainder answered exhausted —
    /// never out-of-bounds, never panicking the batch).
    pub fn query_batch_bounded_each(
        &mut self,
        queries: &[CostQuery],
        budgets: &[QueryBudget],
    ) -> Vec<Result<BoundedAnswer, QueryError>> {
        debug_assert_eq!(queries.len(), budgets.len());
        self.bounded_batch(queries, |i| {
            budgets.get(i).copied().unwrap_or(QueryBudget::settles(0))
        })
    }

    fn bounded_batch(
        &mut self,
        queries: &[CostQuery],
        budget_for: impl Fn(usize) -> QueryBudget + Sync,
    ) -> Vec<Result<BoundedAnswer, QueryError>> {
        let mut out = vec![Ok(BoundedAnswer::Exact(None)); queries.len()];
        let index = self.index;
        self.run(queries.len(), &mut out, |scratch, w, i| {
            let (s, d, t) = queries[i];
            let budget = budget_for(i);
            let start = td_obs::ENABLED.then(std::time::Instant::now);
            let answer = match catch_unwind(AssertUnwindSafe(|| {
                index.query_cost_bounded_in(scratch, s, d, t, &budget)
            })) {
                Ok(answer) => answer,
                Err(payload) => {
                    if !scratch.try_sanitize() {
                        *scratch = replacement_scratch(index);
                    }
                    Err(QueryError::Panicked(panic_message(payload)))
                }
            };
            if let Some(start) = start {
                let m = td_obs::metrics();
                match &answer {
                    Ok(BoundedAnswer::Exact(_)) => &m.ladder_exact,
                    Ok(BoundedAnswer::Approximate { .. }) => &m.ladder_approximate,
                    Err(QueryError::BudgetExhausted) => &m.ladder_budget_exhausted,
                    Err(QueryError::Panicked(_)) => &m.ladder_panicked,
                    Err(QueryError::InvalidQuery(_)) => &m.ladder_invalid,
                }
                .add_shard(w, 1);
                let trace = td_obs::QueryTrace {
                    stats: index.take_search_stats(scratch).unwrap_or_default(),
                    nanos: start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                };
                m.record_query(w, &trace);
            }
            answer
        });
        out
    }

    /// Answers a batch of cost-function (profile) queries on all workers.
    pub fn profile_batch(&mut self, pairs: &[(VertexId, VertexId)]) -> Vec<Option<Plf>> {
        let mut out = vec![None; pairs.len()];
        let index = self.index;
        self.run(pairs.len(), &mut out, |scratch, _w, i| {
            let (s, d) = pairs[i];
            index.query_profile_in(scratch, s, d)
        });
        out
    }

    /// Answers a batch of path queries on all workers.
    pub fn path_batch(&mut self, queries: &[CostQuery]) -> Vec<Option<(f64, Path)>> {
        let mut out = vec![None; queries.len()];
        let index = self.index;
        self.run(queries.len(), &mut out, |scratch, _w, i| {
            let (s, d, t) = queries[i];
            index.query_path_in(scratch, s, d, t)
        });
        out
    }
}

/// An incrementally-updatable index served live: readers query immutable
/// snapshots while a writer repairs a second copy, swapped in atomically
/// between update batches.
///
/// The double buffer holds two independent, identical copies of the index.
/// [`LiveIndex::snapshot`] hands readers an [`Arc`] of the **active** copy —
/// a lock is held only for the clone of the `Arc`, never across a query.
/// [`LiveIndex::apply`]:
///
/// 1. repairs the **standby** copy with [`IncrementalIndex::update_edges`]
///    (readers are unaffected — they hold the active copy);
/// 2. swaps standby and active and bumps the epoch (atomic with respect to
///    [`LiveIndex::snapshot_with_epoch`]);
/// 3. levels the retired copy for the next batch: if no reader still holds
///    it, the same changes are replayed onto it (cheap — edge-weight
///    changes are absolute functions, so replaying the batch onto the copy
///    that is exactly one batch behind makes the copies identical);
///    otherwise the retired copy is abandoned to its readers and replaced
///    by a clone of the just-published active copy.
///
/// Writers are serialised by the standby lock. Writers never block readers,
/// and readers never block writers — a snapshot held forever (even by the
/// writer's own thread, across `apply`) costs one index clone, not a stall.
///
/// **Failure model.** Both locks recover from poisoning with
/// [`PoisonError::into_inner`]: the protected values are plain `Arc` slots
/// whose every mutation is a whole-value replacement or swap, so a panic
/// mid-critical-section cannot leave them torn, and a crashed writer thread
/// must not wedge every future reader. A failing [`IncrementalIndex::
/// update_edges`] (surfaced by [`LiveIndex::try_apply`]) rolls the standby
/// back to a clone of the published snapshot: the epoch does not move and
/// readers never observe any part of the failed batch.
pub struct LiveIndex<I> {
    active: Mutex<Arc<I>>,
    standby: Mutex<Arc<I>>,
    epoch: AtomicU64,
}

/// Why a live update batch was not applied.
#[derive(Clone, Debug, PartialEq)]
pub enum UpdateError {
    /// [`IncrementalIndex::update_edges`] panicked (e.g. a change referred
    /// to a nonexistent edge). The standby copy was rolled back to a clone
    /// of the published snapshot; the epoch did not move and readers were
    /// never exposed to the partial batch.
    UpdatePanicked(String),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpdateError::UpdatePanicked(msg) => {
                write!(f, "live update panicked (standby rolled back): {msg}")
            }
        }
    }
}

impl std::error::Error for UpdateError {}

impl<I: Clone> LiveIndex<I> {
    /// Wraps `index`, cloning it once for the standby buffer. Epoch 0 is the
    /// as-built state.
    pub fn new(index: I) -> LiveIndex<I> {
        LiveIndex {
            standby: Mutex::new(Arc::new(index.clone())),
            active: Mutex::new(Arc::new(index)),
            epoch: AtomicU64::new(0),
        }
    }
}

impl<I> LiveIndex<I> {
    /// The current epoch: the number of applied update batches.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// An immutable snapshot of the active index. The snapshot stays valid —
    /// and frozen at its epoch's edge weights — for as long as the `Arc` is
    /// held, across any number of concurrent [`LiveIndex::apply`] calls.
    /// A poisoned lock (a reader or writer thread that panicked while
    /// holding it) is recovered, never propagated: the slot is always a
    /// whole, valid `Arc`.
    pub fn snapshot(&self) -> Arc<I> {
        self.active
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// [`LiveIndex::snapshot`] paired with the epoch it belongs to. The two
    /// are read under one lock, so a concurrent swap cannot tear the pair.
    pub fn snapshot_with_epoch(&self) -> (u64, Arc<I>) {
        let guard = self.active.lock().unwrap_or_else(PoisonError::into_inner);
        (self.epoch.load(Ordering::Acquire), guard.clone())
    }
}

impl<I: IncrementalIndex + Clone> LiveIndex<I> {
    /// Applies one batch of absolute edge-weight changes, making them
    /// visible to new snapshots atomically. Returns the standby repair's
    /// statistics (levelling the retired copy is not double-counted).
    /// Panics if the repair fails — but only *after* [`LiveIndex::try_apply`]
    /// has rolled the standby back and released both locks, so even then no
    /// lock is poisoned and readers keep answering from the published epoch.
    pub fn apply(&self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats {
        self.try_apply(changes)
            .unwrap_or_else(|e| panic!("live update failed: {e}"))
    }

    /// [`LiveIndex::apply`] with the failure rung made a typed value: if
    /// [`IncrementalIndex::update_edges`] panics (a change naming a
    /// nonexistent edge, a backend bug), the half-repaired standby is
    /// discarded for a clone of the published snapshot, the epoch stays
    /// put, and the error reports the contained panic. Readers are
    /// unaffected throughout, and the next valid batch applies normally.
    pub fn try_apply(
        &self,
        changes: &[(VertexId, VertexId, Plf)],
    ) -> Result<UpdateStats, UpdateError> {
        let start = td_obs::ENABLED.then(std::time::Instant::now);
        let mut standby = self.standby.lock().unwrap_or_else(PoisonError::into_inner);
        // The standby copy is normally unique: readers clone only the
        // active Arc, and the tail of the previous `try_apply` left this
        // slot with either a drained retired copy or a fresh clone. Should
        // it ever be shared, `Arc::make_mut` clones instead of panicking —
        // the slot's content is always level with the published state.
        let repair = catch_unwind(AssertUnwindSafe(|| {
            Arc::make_mut(&mut *standby).update_edges(changes)
        }));
        let stats = match repair {
            Ok(stats) => stats,
            Err(payload) => {
                // Roll back: discard the half-applied copy for a clone of
                // what readers currently see. Epoch unchanged.
                let published = self
                    .active
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                *standby = Arc::new((*published).clone());
                if td_obs::ENABLED {
                    td_obs::metrics().live_rollbacks_total.inc();
                }
                return Err(UpdateError::UpdatePanicked(panic_message(payload)));
            }
        };
        let (published, epoch) = {
            let mut active = self.active.lock().unwrap_or_else(PoisonError::into_inner);
            std::mem::swap(&mut *active, &mut *standby);
            let epoch = self.epoch.fetch_add(1, Ordering::Release) + 1;
            (active.clone(), epoch)
        };
        if let Some(start) = start {
            let m = td_obs::metrics();
            m.live_updates_total.inc();
            m.live_update_seconds
                .observe(start.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            m.live_epoch.set(epoch.min(i64::MAX as u64) as i64);
        }
        // Level the retired copy for the next batch. No reference can
        // *appear* between the check and the mutation: this slot is
        // unreachable from `snapshot`, so the strong count only falls. The
        // replay is contained too — these changes just applied cleanly
        // once, but a panic here must not leave a torn copy in the slot.
        let levelled = match Arc::get_mut(&mut standby) {
            Some(retired) => catch_unwind(AssertUnwindSafe(|| {
                retired.update_edges(changes);
            }))
            .is_ok(),
            // In-flight readers still hold the retired epoch; leave it to
            // them and start the next double buffer from the state just
            // published.
            None => false,
        };
        if !levelled {
            *standby = Arc::new((*published).clone());
        }
        Ok(stats)
    }
}

// Compile-time pin: a live index (both buffers) is shared across reader and
// writer threads; `Sync` for any `Send + Sync` inner index.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<LiveIndex<crate::AStarChIndex>>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_index, Backend, IndexConfig, QuerySession};
    use td_graph::TdGraph;

    fn tiny_graph() -> TdGraph {
        let mut g = TdGraph::with_vertices(4);
        for (u, v, w) in [
            (0u32, 1u32, 60.0),
            (1, 2, 30.0),
            (2, 3, 45.0),
            (3, 0, 90.0),
            (1, 0, 60.0),
            (2, 1, 30.0),
            (3, 2, 45.0),
            (0, 3, 90.0),
        ] {
            g.add_edge(u, v, Plf::constant(w)).unwrap();
        }
        g
    }

    #[test]
    fn executor_matches_session_on_every_worker_count() {
        let index = build_index(tiny_graph(), Backend::TdBasic, &IndexConfig::default());
        let queries: Vec<CostQuery> = (0..4)
            .flat_map(|s| (0..4).map(move |d| (s, d, 3600.0 * (s + d) as f64)))
            .collect();
        let mut session = QuerySession::new(index.as_ref());
        let want = session.query_many(queries.iter().copied());
        for threads in [1, 2, 3, 8] {
            let mut exec = ParallelExecutor::new(index.as_ref(), threads);
            assert_eq!(exec.num_workers(), threads);
            // Twice: the second batch runs on warmed scratches.
            assert_eq!(exec.query_batch(&queries), want, "{threads} threads");
            assert_eq!(exec.query_batch(&queries), want, "{threads} threads warm");
        }
    }

    #[test]
    fn executor_handles_empty_and_unit_batches() {
        let index = build_index(tiny_graph(), Backend::TdBasic, &IndexConfig::default());
        let mut exec = ParallelExecutor::new(index.as_ref(), 4);
        assert_eq!(exec.query_batch(&[]), Vec::<Option<f64>>::new());
        assert_eq!(exec.query_batch(&[(0, 2, 0.0)]), vec![Some(90.0)]);
    }

    #[test]
    fn live_index_snapshots_are_stable_across_apply() {
        use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
        let g = tiny_graph();
        let index = TdTreeIndex::build(
            g,
            IndexOptions {
                strategy: SelectionStrategy::Greedy { budget: 500 },
                track_supports: true,
                ..Default::default()
            },
        );
        let live = LiveIndex::new(index);
        let (e0, before) = live.snapshot_with_epoch();
        assert_eq!(e0, 0);
        let old_cost = before.query_cost(0, 2, 0.0).unwrap();

        live.apply(&[(0, 1, Plf::constant(600.0))]);
        assert_eq!(live.epoch(), 1);
        // The held snapshot still answers with pre-update weights...
        assert_eq!(before.query_cost(0, 2, 0.0).unwrap(), old_cost);
        // ...while a fresh snapshot sees the jam (0->1->2 got slower; the
        // alternative 0->3->2 now wins at 90+45).
        let after = live.snapshot();
        let new_cost = after.query_cost(0, 2, 0.0).unwrap();
        assert!(new_cost > old_cost);
        assert!((new_cost - 135.0).abs() < 1e-9);

        // A second batch exercises the levelled retired copy.
        live.apply(&[(0, 1, Plf::constant(60.0))]);
        assert_eq!(live.epoch(), 2);
        assert_eq!(live.snapshot().query_cost(0, 2, 0.0).unwrap(), old_cost);
    }

    #[test]
    fn try_query_batch_agrees_and_types_invalid_inputs() {
        let index = build_index(tiny_graph(), Backend::TdBasic, &IndexConfig::default());
        let queries: Vec<CostQuery> = vec![
            (0, 2, 0.0),
            (9, 0, 0.0), // source out of range
            (1, 3, 100.0),
            (0, 0, f64::NAN), // non-finite departure
            (2, 0, -5.0),     // negative departure
            (3, 1, 1_000.0),
        ];
        for threads in [1, 4] {
            let mut exec = ParallelExecutor::new(index.as_ref(), threads);
            let got = exec.try_query_batch(&queries);
            for (i, (q, r)) in queries.iter().zip(got.iter()).enumerate() {
                match i {
                    1 | 3 | 4 => assert!(
                        matches!(r, Err(QueryError::InvalidQuery(_))),
                        "slot {i}: {r:?}"
                    ),
                    _ => assert_eq!(
                        r.as_ref().unwrap().map(f64::to_bits),
                        index.query_cost(q.0, q.1, q.2).map(f64::to_bits),
                        "slot {i}"
                    ),
                }
            }
        }
    }

    #[test]
    fn bounded_batch_walks_the_degradation_ladder() {
        let index = build_index(tiny_graph(), Backend::AStarCh, &IndexConfig::default());
        let queries: Vec<CostQuery> = vec![(0, 2, 0.0), (4, 0, 0.0), (3, 1, 50.0)];
        let mut exec = ParallelExecutor::new(index.as_ref(), 2);
        // Unlimited: exact everywhere (except the invalid slot).
        let got = exec.query_batch_bounded(&queries, &QueryBudget::UNLIMITED);
        assert_eq!(
            got[0],
            Ok(BoundedAnswer::Exact(index.query_cost(0, 2, 0.0)))
        );
        assert!(matches!(got[1], Err(QueryError::InvalidQuery(_))));
        assert_eq!(
            got[2],
            Ok(BoundedAnswer::Exact(index.query_cost(3, 1, 50.0)))
        );
        // A zero-settle budget degrades the search backend to intervals
        // that still bracket the truth.
        let got = exec.query_batch_bounded(&queries, &QueryBudget::settles(0));
        for (i, r) in got.iter().enumerate() {
            if i == 1 {
                continue;
            }
            let exact = index.query_cost(queries[i].0, queries[i].1, queries[i].2);
            assert!(
                r.as_ref().unwrap().is_consistent_with(exact, 1e-9),
                "slot {i}: {r:?} vs exact {exact:?}"
            );
        }
    }

    #[test]
    fn per_slot_budgets_bound_each_query_independently() {
        let index = build_index(tiny_graph(), Backend::AStarCh, &IndexConfig::default());
        let queries: Vec<CostQuery> = vec![(0, 2, 0.0), (3, 1, 50.0), (1, 3, 100.0)];
        let budgets = [
            QueryBudget::UNLIMITED,
            QueryBudget::settles(0),
            QueryBudget::UNLIMITED,
        ];
        for threads in [1, 2] {
            let mut exec = ParallelExecutor::new(index.as_ref(), threads);
            let got = exec.query_batch_bounded_each(&queries, &budgets);
            // Unlimited slots are exact and bit-identical to the scalar API.
            assert_eq!(
                got[0],
                Ok(BoundedAnswer::Exact(index.query_cost(0, 2, 0.0)))
            );
            assert_eq!(
                got[2],
                Ok(BoundedAnswer::Exact(index.query_cost(1, 3, 100.0)))
            );
            // The starved middle slot degrades but still brackets the truth.
            let exact = index.query_cost(3, 1, 50.0);
            assert!(got[1].as_ref().unwrap().is_consistent_with(exact, 1e-9));
            // An already-expired per-slot deadline exhausts that slot alone.
            let expired = QueryBudget::UNLIMITED.tightened_to(Some(
                std::time::Instant::now() - std::time::Duration::from_secs(1),
            ));
            let got = exec.query_batch_bounded_each(
                &queries,
                &[QueryBudget::UNLIMITED, expired, QueryBudget::UNLIMITED],
            );
            assert!(got[0].as_ref().is_ok_and(|a| a.is_exact()));
            // Expired slots degrade (interval or typed exhaustion) — they
            // are never reported exact and never poison their neighbours.
            assert!(!matches!(&got[1], Ok(a) if a.is_exact()), "{:?}", got[1]);
            assert!(got[2].as_ref().is_ok_and(|a| a.is_exact()));
        }
    }

    #[test]
    fn poisoned_locks_recover_instead_of_wedging() {
        let live = LiveIndex::new(crate::AStarChIndex::new(tiny_graph()));
        let before = live.snapshot().query_cost(0, 2, 0.0);
        // Poison both locks: panic while holding each guard.
        for poison in [true, false] {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                let _guard = if poison {
                    live.active.lock().unwrap()
                } else {
                    live.standby.lock().unwrap()
                };
                panic!("deliberate poisoning");
            }));
            assert!(r.is_err());
        }
        assert!(live.active.is_poisoned());
        assert!(live.standby.is_poisoned());
        // Readers and writers must keep working on the recovered locks.
        assert_eq!(live.snapshot().query_cost(0, 2, 0.0), before);
        assert_eq!(live.snapshot_with_epoch().0, 0);
        live.apply(&[(0, 1, Plf::constant(600.0))]);
        assert_eq!(live.epoch(), 1);
        assert!(live.snapshot().query_cost(0, 2, 0.0).unwrap() > before.unwrap());
    }

    #[test]
    fn failed_update_rolls_standby_back_and_epoch_stays() {
        let live = LiveIndex::new(crate::AStarChIndex::new(tiny_graph()));
        let before = live.snapshot().query_cost(0, 2, 0.0);
        // Edge 0 -> 2 does not exist: update_edges panics mid-batch after
        // having already applied the 0 -> 1 change.
        let err = live
            .try_apply(&[(0, 1, Plf::constant(600.0)), (0, 2, Plf::constant(1.0))])
            .unwrap_err();
        assert!(matches!(err, UpdateError::UpdatePanicked(_)));
        assert!(err.to_string().contains("does not exist"));
        // Epoch unmoved, readers unaffected, no partial batch visible.
        assert_eq!(live.epoch(), 0);
        assert_eq!(live.snapshot().query_cost(0, 2, 0.0), before);
        // The rolled-back standby accepts the next valid batch.
        live.apply(&[(0, 1, Plf::constant(600.0))]);
        assert_eq!(live.epoch(), 1);
        let after = live.snapshot().query_cost(0, 2, 0.0).unwrap();
        assert!((after - 135.0).abs() < 1e-9);
        // And the retired copy levelled correctly for the batch after that.
        live.apply(&[(0, 1, Plf::constant(60.0))]);
        assert_eq!(live.snapshot().query_cost(0, 2, 0.0), before);
    }
}
