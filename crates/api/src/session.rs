// td-lint: reader-path
// (query-side file: no locks, no channels — readers never block)

//! Reusable per-query state: [`SessionScratch`] and [`QuerySession`].

use crate::index::RoutingIndex;
use std::any::Any;
use td_graph::{Path, VertexId};
use td_plf::Plf;

/// Type-erased, backend-specific scratch space.
///
/// Each backend's [`RoutingIndex::new_scratch`] puts its own buffer type in
/// here (sweep tables for the TD-tree family, arrival hash maps for
/// TD-G-tree, distance arrays and the heap for TD-Dijkstra); the `*_in`
/// query methods downcast it back. A scratch created by one index works with
/// any index of the same backend family; [`SessionScratch::get_or_default`]
/// lazily re-initialises on a family mismatch, so misuse costs correctness
/// nothing — only the reuse benefit.
#[derive(Default)]
pub struct SessionScratch(Option<Box<dyn Any + Send>>);

impl SessionScratch {
    /// An empty scratch (for backends without reusable state).
    pub fn none() -> Self {
        SessionScratch(None)
    }

    /// A scratch holding `value`.
    pub fn new<T: Any + Send>(value: T) -> Self {
        SessionScratch(Some(Box::new(value)))
    }

    /// Restores a logically fresh state after a contained panic, keeping
    /// the warmed capacity, for backends whose scratch supports wholesale
    /// invalidation (currently [`AStarChScratch`](crate::AStarChScratch)).
    /// Returns `false` when it cannot — the caller must then replace the
    /// scratch outright. An empty scratch has no state to tear and
    /// trivially sanitizes.
    pub(crate) fn try_sanitize(&mut self) -> bool {
        match &mut self.0 {
            None => true,
            Some(b) => match b.downcast_mut::<crate::AStarChScratch>() {
                Some(s) => {
                    s.sanitize();
                    true
                }
                None => false,
            },
        }
    }

    /// The contained `T`, initialising a default if absent or of another
    /// backend's type.
    pub fn get_or_default<T: Any + Send + Default>(&mut self) -> &mut T {
        let needs_init = !matches!(&self.0, Some(b) if b.is::<T>());
        if needs_init {
            self.0 = Some(Box::<T>::default());
        }
        self.0
            .as_mut()
            .expect("just initialised")
            .downcast_mut::<T>()
            .expect("just checked the type")
    }
}

/// A query session: one index plus reusable scratch buffers.
///
/// Sessions are the hot-path entry point: the first few queries size the
/// scratch to the index (tree depth, border set sizes, graph size), after
/// which scalar queries run without heap allocation. One session per worker
/// thread is the intended serving pattern — the index itself is shared
/// (`&I` / `Arc<dyn RoutingIndex>`), the session is per-thread mutable
/// state.
///
/// Works with both static and dynamic dispatch:
///
/// ```
/// # use td_api::{build_index, Backend, IndexConfig, QuerySession, RoutingIndex, RoutingIndexExt};
/// # let mut g = td_graph::TdGraph::with_vertices(2);
/// # g.add_edge(0, 1, td_plf::Plf::constant(60.0)).unwrap();
/// # g.add_edge(1, 0, td_plf::Plf::constant(60.0)).unwrap();
/// let index: Box<dyn RoutingIndex> = build_index(g, Backend::TdBasic, &IndexConfig::default());
/// let mut dynamic = QuerySession::new(index.as_ref()); // QuerySession<dyn RoutingIndex>
/// assert!(dynamic.query_cost(0, 1, 0.0).is_some());
/// ```
pub struct QuerySession<'a, I: RoutingIndex + ?Sized> {
    index: &'a I,
    scratch: SessionScratch,
}

impl<'a, I: RoutingIndex + ?Sized> QuerySession<'a, I> {
    /// A session over `index` with backend-sized scratch.
    pub fn new(index: &'a I) -> Self {
        QuerySession {
            scratch: index.new_scratch(),
            index,
        }
    }

    /// The underlying index.
    pub fn index(&self) -> &'a I {
        self.index
    }

    /// Travel cost query `Q(s, d, t)` — allocation-free after warm-up.
    pub fn query_cost(&mut self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.index.query_cost_in(&mut self.scratch, s, d, t)
    }

    /// [`QuerySession::query_cost`] plus the per-query
    /// [`td_obs::QueryTrace`] (wall time and search counters).
    pub fn query_cost_traced(
        &mut self,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> (Option<f64>, td_obs::QueryTrace) {
        self.index.query_cost_traced_in(&mut self.scratch, s, d, t)
    }

    /// Shortest travel cost function query `f_{s,d}(t)`.
    pub fn query_profile(&mut self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.index.query_profile_in(&mut self.scratch, s, d)
    }

    /// Travel cost and the shortest path itself.
    pub fn query_path(&mut self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.index.query_path_in(&mut self.scratch, s, d, t)
    }

    /// Answers a batch of travel cost queries, amortising the session's
    /// scratch reuse across the workload.
    pub fn query_many(
        &mut self,
        queries: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
    ) -> Vec<Option<f64>> {
        let mut out = Vec::new();
        self.query_many_into(queries, &mut out);
        out
    }

    /// [`QuerySession::query_many`] writing into a caller-owned buffer
    /// (cleared first), so steady-state batch serving allocates nothing.
    pub fn query_many_into(
        &mut self,
        queries: impl IntoIterator<Item = (VertexId, VertexId, f64)>,
        out: &mut Vec<Option<f64>>,
    ) {
        out.clear();
        for (s, d, t) in queries {
            out.push(self.query_cost(s, d, t));
        }
    }
}

// Compile-time pin: scratch moves to its worker thread, never shared.
const _: () = {
    const fn moves_to_worker<T: Send>() {}
    moves_to_worker::<SessionScratch>()
};
