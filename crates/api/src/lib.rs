#![deny(unsafe_code)]
//! # td-api — the system's public query contract
//!
//! Every index family in the workspace — the paper's TD-tree
//! ([`td_core::TdTreeIndex`]), the TD-G-tree and TD-H2H baselines, the
//! non-index TD-Dijkstra oracle, and the lazy-CH-potential TD-A\* engine
//! ([`AStarChIndex`]) — answers the same three query kinds under
//! the same accounting. This crate is the one seam expressing that:
//!
//! * [`RoutingIndex`] — the object-safe trait every backend implements:
//!   `query_cost` / `query_profile` / `query_path` / `memory_bytes` /
//!   `build_stats`, plus scratch-aware `*_in` variants powering sessions;
//! * [`Backend`] + [`IndexConfig`] + [`build_index`] — a uniform factory so
//!   harnesses, tests and examples never hand-roll per-backend dispatch;
//! * [`QuerySession`] — owns reusable per-query scratch (distance arrays,
//!   sweep tables, PLF work vectors) so hot-path queries stop allocating,
//!   with [`QuerySession::query_many`] amortising the reuse over a batch;
//! * [`IncrementalIndex`] — the optional `update_edges` extension
//!   (implemented by the TD-tree family when built with
//!   [`IndexConfig::track_supports`]);
//! * [`ParallelExecutor`] + [`LiveIndex`] — the concurrent serving layer:
//!   session-pooled parallel query batches over one shared index, and the
//!   epoch/double-buffer live-update mode where readers query immutable
//!   snapshots while a writer repairs a second copy;
//! * [`conformance`] — a backend-generic test suite instantiated for every
//!   [`Backend`] in this crate's tests.
//!
//! ```
//! use td_api::{build_index, Backend, IndexConfig, QuerySession};
//! # let mut g = td_graph::TdGraph::with_vertices(2);
//! # g.add_edge(0, 1, td_plf::Plf::constant(60.0)).unwrap();
//! # g.add_edge(1, 0, td_plf::Plf::constant(60.0)).unwrap();
//! let index = build_index(g, Backend::TdAppro, &IndexConfig {
//!     budget: 20_000,
//!     ..Default::default()
//! });
//! let mut session = QuerySession::new(index.as_ref());
//! let cost = session.query_cost(0, 1, 8.0 * 3600.0);
//! let again = session.query_cost(0, 1, 8.0 * 3600.0); // reuses buffers
//! assert_eq!(cost, again);
//! ```

mod astar_ch;
mod backend;
mod bounded;
pub mod conformance;
mod index;
mod oracle;
mod parallel;
mod session;
mod snapshot;

pub use astar_ch::{AStarChIndex, AStarChScratch};
pub use backend::{build_index, Backend, IndexConfig};
pub use bounded::{BoundedAnswer, QueryError};
pub use index::{IncrementalIndex, IndexStats, RoutingIndex, RoutingIndexExt};
pub use oracle::DijkstraOracle;
pub use parallel::{CostQuery, LiveIndex, ParallelExecutor, UpdateError};
pub use session::{QuerySession, SessionScratch};
pub use snapshot::{
    load_index, load_index_from, load_tree_index, save_index, save_index_to,
    save_index_with_kill_point, KillPoint,
};
pub use td_dijkstra::QueryBudget;
pub use td_store::{BackendTag, StoreError};
