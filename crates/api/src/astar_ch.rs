//! The TD-A\*-CH backend: exact time-dependent A\* on the frozen graph,
//! ordered by lazy contraction-hierarchy potentials.
//!
//! Where [`crate::DijkstraOracle`] searches blind, this backend pays a small
//! preprocessing cost — contracting the scalar min-cost graph once
//! ([`td_ch::ContractionHierarchy`]) — so every query gets a goal-directed
//! potential for the price of one backward *upward* search (a few hundred
//! settled vertices) instead of the O(n) full backward Dijkstra of the
//! legacy A\* baseline. Answers are bit-identical to frozen scalar Dijkstra.
//!
//! The contraction **order** is metric-independent: [`update_edges`]
//! re-freezes the graph (rebuilding the min bounds) and re-customizes the
//! hierarchy's shortcuts under the kept order, CATCHUp-style, instead of
//! re-running the ordering heuristic. The same customization pass runs on
//! snapshot load, so build, update and load all produce bit-identical
//! hierarchies.
//!
//! [`update_edges`]: crate::IncrementalIndex::update_edges

use td_ch::ContractionHierarchy;
use td_dijkstra::{
    astar_cost_frozen_bounded_with, astar_cost_frozen_with, astar_path_frozen_with,
    profile_search_to, AStarScratch, BoundedCost, ChPotential, ChPotentialScratch, QueryBudget,
};
use td_graph::{FrozenGraph, Path, TdGraph, VertexId};
use td_plf::Plf;

#[allow(unused_imports)] // rustdoc link
use crate::index::RoutingIndex;

/// Per-session scratch of the TD-A\*-CH backend: the forward A\* state plus
/// the per-worker potential state (backward-upward distances + memo table).
/// One per worker thread; zero allocations per query once warmed.
#[derive(Clone, Debug, Default)]
pub struct AStarChScratch {
    pub(crate) potential: ChPotentialScratch,
    pub(crate) search: AStarScratch,
}

impl AStarChScratch {
    /// Restores a logically fresh state after a contained panic while
    /// keeping every warmed allocation (see [`AStarScratch::sanitize`] and
    /// [`ChPotentialScratch::sanitize`]): generation stamps make all torn
    /// values unreachable, and capacity — the workload's high-water mark —
    /// survives, so post-panic batches allocate nothing extra.
    pub fn sanitize(&mut self) {
        self.potential.sanitize();
        self.search.sanitize();
    }
}

/// TD-A\* over the frozen CSR/arena layout with lazy CH potentials.
#[derive(Clone)]
pub struct AStarChIndex {
    graph: TdGraph,
    frozen: FrozenGraph,
    ch: ContractionHierarchy,
}

impl AStarChIndex {
    /// Freezes `graph` and contracts its min-cost weights.
    pub fn new(graph: TdGraph) -> AStarChIndex {
        let freeze_span = td_obs::ENABLED.then(|| td_obs::phase("freeze"));
        let frozen = graph.freeze();
        drop(freeze_span);
        let ch = ContractionHierarchy::build(&frozen);
        AStarChIndex { graph, frozen, ch }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }

    /// The frozen CSR/arena view the forward search runs on.
    pub fn frozen(&self) -> &FrozenGraph {
        &self.frozen
    }

    /// The contraction hierarchy behind the potentials.
    pub fn hierarchy(&self) -> &ContractionHierarchy {
        &self.ch
    }

    /// Travel cost query by TD-A\* with a fresh scratch.
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.query_cost_with(&mut AStarChScratch::default(), s, d, t)
    }

    /// [`AStarChIndex::query_cost`] reusing `scratch` — the hot path.
    pub fn query_cost_with(
        &self,
        scratch: &mut AStarChScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let mut pot = ChPotential::new(&self.ch, &mut scratch.potential);
        astar_cost_frozen_with(&mut scratch.search, &self.frozen, &mut pot, s, d, t)
    }

    /// [`AStarChIndex::query_cost_with`] under a [`QueryBudget`]: identical
    /// (bit-identical when complete), but exhaustion degrades to a
    /// bracketing interval whose lower bound comes from the CH-potential
    /// frontier keys.
    pub fn query_cost_bounded_with(
        &self,
        scratch: &mut AStarChScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> BoundedCost {
        let mut pot = ChPotential::new(&self.ch, &mut scratch.potential);
        astar_cost_frozen_bounded_with(&mut scratch.search, &self.frozen, &mut pot, s, d, t, budget)
    }

    /// Cost function query by a full profile search from `s` (the potential
    /// bounds a single departure; profiles take the oracle's route).
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        profile_search_to(&self.graph, s, |v| v == d).dist[d as usize].clone()
    }

    /// Travel cost and path by TD-A\* with parent tracking.
    pub fn query_path_with(
        &self,
        scratch: &mut AStarChScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        let mut pot = ChPotential::new(&self.ch, &mut scratch.potential);
        astar_path_frozen_with(&mut scratch.search, &self.frozen, &mut pot, s, d, t)
    }

    /// Applies weight changes: rebuilds the frozen view (and with it every
    /// min bound), then re-customizes the hierarchy's shortcut weights under
    /// the kept metric-independent order. Panics if an edge does not exist
    /// (updates change weights, not topology — matching the TD-tree
    /// family's contract).
    pub fn update_edges(&mut self, changes: &[(VertexId, VertexId, Plf)]) -> td_core::UpdateStats {
        let t0 = std::time::Instant::now();
        let mut stats = td_core::UpdateStats::default();
        for (u, v, w) in changes {
            let e = self
                .graph
                .find_edge(*u, *v)
                .unwrap_or_else(|| panic!("updated edge {u} -> {v} does not exist"));
            if self.graph.weight(e).approx_eq(w, 1e-9) {
                continue;
            }
            self.graph.set_weight(e, w.clone()).expect("validated");
            stats.changed_edges += 1;
        }
        if stats.changed_edges > 0 {
            self.frozen = self.graph.freeze();
            self.ch.customize(&self.frozen);
        }
        stats.rebuild_secs = t0.elapsed().as_secs_f64();
        stats
    }

    /// Index memory: the frozen mirror plus the hierarchy arrays.
    pub fn memory_bytes(&self) -> usize {
        self.frozen.heap_bytes() + self.ch.heap_bytes()
    }
}

/// Snapshot persistence: the graph plus the hierarchy's metric-independent
/// order (rank permutation + build time). The frozen view and the shortcut
/// arrays are recomputed on load by the same deterministic freeze +
/// customize passes the build used — derived pruning data never sits in the
/// file where a CRC-valid edit could desynchronise it.
impl td_store::Persist for AStarChIndex {
    fn write_into<W: std::io::Write>(&self, w: &mut W) -> Result<(), td_store::StoreError> {
        self.graph.write_into(w)?;
        td_ch::persist::write_ch(&self.ch, w)
    }

    fn read_from<R: std::io::Read>(r: &mut R) -> Result<AStarChIndex, td_store::StoreError> {
        let graph = TdGraph::read_from(r)?;
        let frozen = graph.freeze();
        let ch = td_ch::persist::read_ch(r, &frozen)?;
        Ok(AStarChIndex { graph, frozen, ch })
    }
}

// Compile-time pin: a built index is shared read-only across query threads.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    shared_across_threads::<AStarChIndex>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    #[test]
    fn update_edges_tracks_a_fresh_build() {
        use td_gen::random_graph::random_profile;
        let g = seeded_graph(21, 30, 22, 3);
        let mut index = AStarChIndex::new(g.clone());
        let mut rng = StdRng::seed_from_u64(5);
        let e = g.edges()[rng.gen_range(0..g.num_edges())].clone();
        let w = random_profile(&mut rng, 3, 50.0, 700.0);
        let stats = index.update_edges(&[(e.from, e.to, w.clone())]);
        assert!(stats.changed_edges <= 1);

        let mut g2 = g.clone();
        let eid = g2.find_edge(e.from, e.to).unwrap();
        g2.set_weight(eid, w).unwrap();
        let fresh = AStarChIndex::new(g2);
        let mut sc = AStarChScratch::default();
        for _ in 0..40 {
            let s = rng.gen_range(0..30) as u32;
            let d = rng.gen_range(0..30) as u32;
            let t = rng.gen_range(0.0..DAY);
            assert_eq!(
                index.query_cost_with(&mut sc, s, d, t).map(f64::to_bits),
                fresh.query_cost(s, d, t).map(f64::to_bits),
                "s={s} d={d} t={t}"
            );
        }
    }
}
