//! The [`Backend`] enum, unified [`IndexConfig`] and the [`build_index`]
//! factory.

use crate::astar_ch::AStarChIndex;
use crate::index::RoutingIndex;
use crate::oracle::DijkstraOracle;
use std::fmt;
use std::str::FromStr;
use td_core::{IndexOptions, SelectionStrategy, TdTreeIndex};
use td_graph::TdGraph;
use td_gtree::{GtreeConfig, TdGtree};
use td_h2h::{H2hConfig, TdH2h};

/// Every index family in the workspace, named as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// The TD-tree without shortcuts (Algo. 3 queries only).
    TdBasic,
    /// The TD-tree with Algo. 5 dual-greedy shortcut selection.
    TdAppro,
    /// The TD-tree with Algo. 4 dynamic-programming shortcut selection.
    TdDp,
    /// The TD-H2H baseline (full 2-hop labels).
    TdH2h,
    /// The TD-G-tree baseline (border cost-function matrices).
    TdGtree,
    /// The non-index TD-Dijkstra baseline / correctness oracle.
    Dijkstra,
    /// TD-A\* on the frozen graph with lazy contraction-hierarchy
    /// potentials (exact; preprocessing = one scalar min-cost contraction).
    AStarCh,
}

impl Backend {
    /// Every backend, in the paper's presentation order (workspace
    /// additions after the paper's six).
    pub const ALL: [Backend; 7] = [
        Backend::TdBasic,
        Backend::TdAppro,
        Backend::TdDp,
        Backend::TdH2h,
        Backend::TdGtree,
        Backend::Dijkstra,
        Backend::AStarCh,
    ];

    /// Display name as in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Backend::TdBasic => "TD-basic",
            Backend::TdAppro => "TD-appro",
            Backend::TdDp => "TD-dp",
            Backend::TdH2h => "TD-H2H",
            Backend::TdGtree => "TD-G-tree",
            Backend::Dijkstra => "TD-Dijkstra",
            Backend::AStarCh => "TD-A*-CH",
        }
    }

    /// Builds this backend's index over `graph`.
    pub fn build(self, graph: TdGraph, cfg: &IndexConfig) -> Box<dyn RoutingIndex> {
        let _span = td_obs::ENABLED.then(|| td_obs::phase("build"));
        let tree_opts = |strategy| IndexOptions {
            strategy,
            threads: cfg.threads,
            track_supports: cfg.track_supports,
        };
        match self {
            Backend::TdBasic => Box::new(TdTreeIndex::build(
                graph,
                tree_opts(SelectionStrategy::Basic),
            )),
            Backend::TdAppro => Box::new(TdTreeIndex::build(
                graph,
                tree_opts(SelectionStrategy::Greedy { budget: cfg.budget }),
            )),
            Backend::TdDp => Box::new(TdTreeIndex::build(
                graph,
                tree_opts(SelectionStrategy::Dp {
                    budget: cfg.budget,
                    weight_scale: cfg.dp_weight_scale(),
                }),
            )),
            Backend::TdH2h => Box::new(TdH2h::build(
                graph,
                H2hConfig {
                    threads: cfg.threads,
                },
            )),
            Backend::TdGtree => Box::new(TdGtree::build(
                graph,
                GtreeConfig {
                    max_leaf: cfg.max_leaf,
                },
            )),
            Backend::Dijkstra => Box::new(DijkstraOracle::new(graph)),
            Backend::AStarCh => Box::new(AStarChIndex::new(graph)),
        }
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Backend {
    type Err = String;

    /// Parses paper names and common aliases (case-insensitive):
    /// `td-basic`, `td-appro`/`appro`, `td-dp`/`dp`, `td-h2h`/`h2h`,
    /// `td-g-tree`/`gtree`, `td-dijkstra`/`dijkstra`,
    /// `td-astar-ch`/`astar-ch`/`astar`.
    fn from_str(s: &str) -> Result<Backend, String> {
        match s.to_ascii_lowercase().as_str() {
            "td-basic" | "basic" => Ok(Backend::TdBasic),
            "td-appro" | "appro" => Ok(Backend::TdAppro),
            "td-dp" | "dp" => Ok(Backend::TdDp),
            "td-h2h" | "h2h" => Ok(Backend::TdH2h),
            "td-g-tree" | "td-gtree" | "gtree" => Ok(Backend::TdGtree),
            "td-dijkstra" | "dijkstra" => Ok(Backend::Dijkstra),
            "td-astar-ch" | "td-a*-ch" | "astar-ch" | "astar" => Ok(Backend::AStarCh),
            other => Err(format!("unknown backend `{other}`")),
        }
    }
}

/// Backend-agnostic construction options. Each backend reads the knobs that
/// apply to it and ignores the rest, so one config drives a whole
/// multi-backend comparison.
#[derive(Clone, Debug)]
pub struct IndexConfig {
    /// Shortcut budget `N` in interpolation points (TD-appro / TD-dp).
    pub budget: u64,
    /// Weight bucketing for the DP knapsack (TD-dp): `0` = auto-scale so the
    /// DP row stays around 10k cells, `1` = exact, larger = coarser.
    pub weight_scale: u32,
    /// Worker threads for construction passes (0 = all cores).
    pub threads: usize,
    /// Track support lists so the TD-tree family accepts
    /// [`crate::IncrementalIndex::update_edges`].
    pub track_supports: bool,
    /// Maximum vertices per leaf partition (TD-G-tree's τ).
    pub max_leaf: usize,
    /// Build-or-load snapshot caching: when set, [`build_index`] first
    /// tries to load a `.tdx` snapshot of the requested backend from this
    /// path, and on a miss builds from scratch and writes the snapshot for
    /// the next run. A hit must match the requested backend **and** the
    /// passed graph's vertex/edge counts (a snapshot carries its own graph;
    /// shape disagreement means a stale cache and triggers a rebuild).
    /// Construction knobs that change the index but not the graph — the
    /// budget, `track_supports`, `max_leaf` — are *not* cross-checked:
    /// encode them into the path (as the bench harness does with its cell
    /// keys) when caching across configurations. A corrupt, truncated or
    /// mismatched snapshot is reported on stderr and treated as a miss
    /// (the cache never compromises correctness); use [`crate::load_index`]
    /// directly when load failures must be surfaced as errors instead.
    pub snapshot_path: Option<std::path::PathBuf>,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            budget: 10_000,
            weight_scale: 0,
            threads: 0,
            track_supports: false,
            max_leaf: 32,
            snapshot_path: None,
        }
    }
}

impl IndexConfig {
    /// The effective DP weight scale: explicit, or auto-derived from the
    /// budget to keep the knapsack row near 10k cells.
    pub fn dp_weight_scale(&self) -> u32 {
        if self.weight_scale != 0 {
            self.weight_scale
        } else {
            self.budget.div_ceil(10_000).max(1) as u32
        }
    }
}

/// Builds `backend`'s index over `graph` — the workspace's uniform entry
/// point.
///
/// With [`IndexConfig::snapshot_path`] set, this becomes **build-or-load**:
/// an existing snapshot of the same backend is loaded (milliseconds — a
/// linear copy of flat arrays) instead of rebuilding (potentially minutes
/// of elimination/selection/partitioning), and a fresh build is saved back
/// to the path so every later run hits the fast path.
pub fn build_index(graph: TdGraph, backend: Backend, cfg: &IndexConfig) -> Box<dyn RoutingIndex> {
    let Some(path) = &cfg.snapshot_path else {
        return backend.build(graph, cfg);
    };
    if path.exists() {
        match crate::snapshot::load_index(path) {
            // The snapshot must hold the requested backend over the same
            // graph shape; anything else is a stale cache entry and gets
            // rebuilt. (Construction knobs like the budget are the
            // caller's responsibility to encode into the path — see the
            // `snapshot_path` docs.)
            Ok(index)
                if index.backend_name() == backend.name()
                    && index.graph().num_vertices() == graph.num_vertices()
                    && index.graph().num_edges() == graph.num_edges() =>
            {
                return index
            }
            Ok(index) => eprintln!(
                "td-api: snapshot {} holds {} over {} vertices but {} over {} was requested; \
                 rebuilding",
                path.display(),
                index.backend_name(),
                index.graph().num_vertices(),
                backend.name(),
                graph.num_vertices()
            ),
            Err(e) => eprintln!(
                "td-api: could not load snapshot {}: {e}; rebuilding",
                path.display()
            ),
        }
    }
    let index = backend.build(graph, cfg);
    if let Err(e) = crate::snapshot::save_index(index.as_ref(), path) {
        eprintln!("td-api: could not save snapshot {}: {e}", path.display());
    }
    index
}
