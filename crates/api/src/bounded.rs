//! Bounded queries: the serving layer's typed error taxonomy and the
//! graceful-degradation answer a query returns when its budget runs out.
//!
//! The degradation ladder is **exact → bounded → error**, and every rung is
//! explicit in the types:
//!
//! * [`BoundedAnswer::Exact`] — the search completed; the value is
//!   bit-identical to [`RoutingIndex::query_cost`].
//! * [`BoundedAnswer::Approximate`] — the budget ran out but the search
//!   frontier proves a bracketing `[lower, upper]` interval (search
//!   backends always have one — for TD-A\*-CH it comes from the CH
//!   potential keys). A flagged interval is never a wrong exact claim.
//! * [`QueryError`] — nothing trustworthy could be produced: the inputs
//!   were invalid, a label backend's deadline had already passed at entry,
//!   or the query panicked inside a batch.

use std::fmt;
use td_dijkstra::BoundedCost;
use td_graph::VertexId;

#[allow(unused_imports)] // rustdoc links
use crate::index::RoutingIndex;

/// Why a query produced no answer at all.
#[derive(Clone, Debug, PartialEq)]
pub enum QueryError {
    /// The inputs never reached a search: out-of-range vertex id, or a
    /// non-finite / negative departure time.
    InvalidQuery(String),
    /// The budget was spent and this backend had no bounds to degrade to
    /// (label backends), or the deadline had already passed at entry.
    BudgetExhausted,
    /// The query panicked and was contained by
    /// [`crate::ParallelExecutor::try_query_batch`]; the payload is the
    /// panic message. The rest of the batch is unaffected.
    Panicked(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::InvalidQuery(why) => write!(f, "invalid query: {why}"),
            QueryError::BudgetExhausted => write!(f, "query budget exhausted"),
            QueryError::Panicked(msg) => write!(f, "query panicked: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// A query answer that is allowed to be inexact — but never silently wrong.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BoundedAnswer {
    /// The exact answer, bit-identical to the unbounded query (`None` =
    /// destination proven unreachable).
    Exact(Option<f64>),
    /// Budget exhausted mid-search. If the destination is reachable its
    /// exact travel cost lies in `[lower, upper]`; a finite `upper` was
    /// witnessed by a concrete path and therefore proves reachability,
    /// while `upper == INFINITY` leaves reachability open. Exhaustion
    /// never claims unreachability.
    Approximate {
        /// Admissible lower bound on the travel cost (≥ 0).
        lower: f64,
        /// Witnessed upper bound, or `f64::INFINITY`.
        upper: f64,
    },
}

impl BoundedAnswer {
    /// True for [`BoundedAnswer::Exact`].
    pub fn is_exact(&self) -> bool {
        matches!(self, BoundedAnswer::Exact(_))
    }

    /// True when this answer is consistent with the known exact answer —
    /// the invariant the conformance suite checks for every backend: an
    /// exact claim must match (to `eps`), an interval must be well-formed
    /// (a finite lower bound, `lower <= upper`), must bracket a reachable
    /// cost, and must not rule out an unreachable pair by claiming a
    /// witnessed (finite) upper bound.
    pub fn is_consistent_with(&self, exact: Option<f64>, eps: f64) -> bool {
        match (self, exact) {
            (BoundedAnswer::Exact(a), e) => match (a, e) {
                (Some(a), Some(e)) => (a - e).abs() <= eps,
                (None, None) => true,
                _ => false,
            },
            (BoundedAnswer::Approximate { lower, upper }, Some(c)) => {
                lower.is_finite() && *lower <= *upper && *lower <= c + eps && c <= *upper + eps
            }
            (BoundedAnswer::Approximate { lower, upper }, None) => {
                lower.is_finite() && *lower <= *upper && upper.is_infinite()
            }
        }
    }
}

impl From<BoundedCost> for BoundedAnswer {
    fn from(c: BoundedCost) -> BoundedAnswer {
        match c {
            BoundedCost::Exact(v) => BoundedAnswer::Exact(v),
            BoundedCost::Exhausted { lower, upper } => BoundedAnswer::Approximate { lower, upper },
        }
    }
}

/// Input validation every bounded query runs before touching the index:
/// vertex ids must be in range and the departure time finite and
/// non-negative. Invalid inputs are a caller bug surfaced as a typed
/// error, never a panic or a garbage answer.
pub(crate) fn validate_query(
    num_vertices: usize,
    s: VertexId,
    d: VertexId,
    t: f64,
) -> Result<(), QueryError> {
    if (s as usize) >= num_vertices {
        return Err(QueryError::InvalidQuery(format!(
            "source vertex {s} out of range (graph has {num_vertices} vertices)"
        )));
    }
    if (d as usize) >= num_vertices {
        return Err(QueryError::InvalidQuery(format!(
            "destination vertex {d} out of range (graph has {num_vertices} vertices)"
        )));
    }
    if !t.is_finite() {
        return Err(QueryError::InvalidQuery(format!(
            "departure time {t} is not finite"
        )));
    }
    if t < 0.0 {
        return Err(QueryError::InvalidQuery(format!(
            "departure time {t} is negative"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_catches_each_bad_input() {
        assert!(validate_query(10, 0, 9, 0.0).is_ok());
        assert!(matches!(
            validate_query(10, 10, 0, 0.0),
            Err(QueryError::InvalidQuery(_))
        ));
        assert!(matches!(
            validate_query(10, 0, 10, 0.0),
            Err(QueryError::InvalidQuery(_))
        ));
        assert!(matches!(
            validate_query(10, 0, 0, f64::NAN),
            Err(QueryError::InvalidQuery(_))
        ));
        assert!(matches!(
            validate_query(10, 0, 0, f64::INFINITY),
            Err(QueryError::InvalidQuery(_))
        ));
        assert!(matches!(
            validate_query(10, 0, 0, -1.0),
            Err(QueryError::InvalidQuery(_))
        ));
    }

    #[test]
    fn consistency_predicate_matches_its_doc() {
        let eps = 1e-9;
        assert!(BoundedAnswer::Exact(Some(5.0)).is_consistent_with(Some(5.0), eps));
        assert!(!BoundedAnswer::Exact(Some(5.0)).is_consistent_with(Some(6.0), eps));
        assert!(BoundedAnswer::Exact(None).is_consistent_with(None, eps));
        assert!(!BoundedAnswer::Exact(None).is_consistent_with(Some(1.0), eps));
        let approx = BoundedAnswer::Approximate {
            lower: 1.0,
            upper: 4.0,
        };
        assert!(approx.is_consistent_with(Some(2.5), eps));
        assert!(!approx.is_consistent_with(Some(5.0), eps));
        assert!(!approx.is_consistent_with(None, eps)); // finite upper claims reachability
        let open = BoundedAnswer::Approximate {
            lower: 1.0,
            upper: f64::INFINITY,
        };
        assert!(open.is_consistent_with(None, eps));
        assert!(open.is_consistent_with(Some(9.0), eps));
    }

    #[test]
    fn errors_render_their_taxonomy() {
        let e = QueryError::InvalidQuery("source vertex 9 out of range".into());
        assert!(e.to_string().contains("invalid query"));
        assert!(QueryError::BudgetExhausted.to_string().contains("budget"));
        assert!(QueryError::Panicked("boom".into())
            .to_string()
            .contains("boom"));
    }
}
