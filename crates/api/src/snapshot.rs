//! Saving and loading built indexes as `.tdx` snapshots.
//!
//! The paper's preprocessing is the expensive phase; queries are cheap. A
//! production router therefore restarts from a snapshot, not a rebuild:
//! [`save_index`] writes any [`RoutingIndex`] trait object as a versioned,
//! checksummed `.tdx` file, and [`load_index`] reconstructs the same backend
//! — dispatching on the header's backend tag — answering every query
//! **bit-identically** to the freshly built index, in a load that is a
//! linear copy of flat arrays rather than a re-run of elimination,
//! selection or partitioning.
//!
//! The in-memory variants ([`save_index_to`] / [`load_index_from`]) work
//! over any `io::Write`/`io::Read`, which the conformance suite and the
//! corruption tests use to round-trip through plain byte buffers.
//!
//! ## Crash consistency: the `.tdx` / `.tdx.prev` generation pair
//!
//! [`save_index`] never writes into the live file. It writes the complete
//! snapshot to `<path>.tmp`, flushes and fsyncs it, renames any existing
//! `<path>` to `<path>.prev` (the previous generation), then renames the
//! temp file over `<path>` — each rename atomic on POSIX filesystems — and
//! finally best-effort-fsyncs the parent directory. A crash at *any* point
//! in that pipeline leaves either the new generation or the old one intact
//! and loadable: [`load_index`] / [`load_tree_index`] try `<path>` first and
//! fall back to `<path>.prev` on any [`StoreError`] (a torn temp write is
//! additionally caught by the format's CRC sections and end marker). The
//! kill-point sweep in `tests/crash_consistency.rs` proves this for every
//! [`KillPoint`] and for mid-write faults at every stride of the snapshot
//! length, using [`td_store::fault`]'s deterministic shims.

use crate::backend::Backend;
use crate::index::RoutingIndex;
use crate::oracle::DijkstraOracle;
use std::ffi::OsString;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use td_core::TdTreeIndex;
use td_gtree::TdGtree;
use td_h2h::TdH2h;
use td_store::{fault::FaultyWriter, format, section, BackendTag, Persist, StoreError};

impl Backend {
    /// The snapshot backend tag of this backend.
    pub fn snapshot_tag(&self) -> BackendTag {
        match self {
            Backend::TdBasic => BackendTag::TdBasic,
            Backend::TdAppro => BackendTag::TdAppro,
            Backend::TdDp => BackendTag::TdDp,
            Backend::TdH2h => BackendTag::TdH2h,
            Backend::TdGtree => BackendTag::TdGtree,
            Backend::Dijkstra => BackendTag::Dijkstra,
            Backend::AStarCh => BackendTag::AStarCh,
        }
    }

    /// The backend named by a snapshot tag.
    pub fn from_snapshot_tag(tag: BackendTag) -> Backend {
        match tag {
            BackendTag::TdBasic => Backend::TdBasic,
            BackendTag::TdAppro => Backend::TdAppro,
            BackendTag::TdDp => Backend::TdDp,
            BackendTag::TdH2h => Backend::TdH2h,
            BackendTag::TdGtree => Backend::TdGtree,
            BackendTag::Dijkstra => Backend::Dijkstra,
            BackendTag::AStarCh => Backend::AStarCh,
        }
    }
}

/// The tag a TD-tree index snapshots under, derived from its strategy.
pub(crate) fn tree_tag(index: &TdTreeIndex) -> BackendTag {
    use td_core::SelectionStrategy::*;
    match index.options.strategy {
        Basic => BackendTag::TdBasic,
        Greedy { .. } => BackendTag::TdAppro,
        Dp { .. } => BackendTag::TdDp,
        All => BackendTag::TdH2h,
    }
}

/// Writes `index` as a complete snapshot stream (header + body + end
/// marker) into `w`.
pub fn save_index_to(index: &dyn RoutingIndex, w: &mut dyn Write) -> Result<(), StoreError> {
    index.write_snapshot(w)
}

/// A simulated crash point inside the [`save_index`] pipeline, for the
/// crash-consistency tests. Passing one to [`save_index_with_kill_point`]
/// makes the save stop (return `Ok`) exactly as a killed process would
/// stop there — leaving whatever on-disk state the pipeline had reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPoint {
    /// Die mid-way through writing `<path>.tmp`: the temp file's write
    /// stream fails at byte `n` (injected via [`td_store::fault`]).
    DuringTempWrite(u64),
    /// Die after the temp file is written and fsynced, before the current
    /// generation is renamed to `<path>.prev`.
    BeforeBackupRename,
    /// Die between the two renames: `<path>.prev` holds the old
    /// generation, `<path>` does not exist yet.
    BetweenRenames,
    /// Die after both renames, before the parent directory fsync.
    BeforeDirSync,
}

/// `<path>` with `suffix` appended to its final component (so
/// `net.tdx` → `net.tdx.tmp` / `net.tdx.prev`).
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = OsString::from(path.as_os_str());
    s.push(suffix);
    PathBuf::from(s)
}

/// The `<path>.prev` previous-generation sibling of a snapshot path.
pub(crate) fn prev_path(path: &Path) -> PathBuf {
    sibling(path, ".prev")
}

/// Saves `index` as a `.tdx` file at `path`, crash-consistently: temp-file
/// write → flush + fsync → rename the current generation (if any) to
/// `<path>.prev` → atomic rename of the temp file over `<path>` →
/// best-effort parent-directory fsync. At every intermediate state at least
/// one of `<path>` / `<path>.prev` is a complete, loadable snapshot.
pub fn save_index(index: &dyn RoutingIndex, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let _span = td_obs::ENABLED
        .then(|| td_obs::PhaseTimer::observing(td_obs::metrics().snapshot_save_seconds.clone()));
    save_pipeline(index, path.as_ref(), None)
}

/// [`save_index`] with a simulated crash at `kill`: the pipeline runs
/// normally up to that point, then returns `Ok(())` without completing —
/// exactly the on-disk state a process killed there would leave. Only the
/// crash-consistency tests should pass `Some`.
pub fn save_index_with_kill_point(
    index: &dyn RoutingIndex,
    path: impl AsRef<Path>,
    kill: KillPoint,
) -> Result<(), StoreError> {
    save_pipeline(index, path.as_ref(), Some(kill))
}

fn save_pipeline(
    index: &dyn RoutingIndex,
    path: &Path,
    kill: Option<KillPoint>,
) -> Result<(), StoreError> {
    let tmp = sibling(path, ".tmp");
    let file = std::fs::File::create(&tmp)?;
    if let Some(KillPoint::DuringTempWrite(n)) = kill {
        // A mid-write crash: the stream dies at byte n, the torn temp file
        // stays on disk, and the pipeline never reaches the renames.
        let mut w = std::io::BufWriter::new(FaultyWriter::new(&file).fail_at_byte(n));
        // Either the injected fault fires (torn temp file) or `n` lies past
        // the end of the stream (complete temp file) — both are states a
        // kill leaves behind, and neither reaches the renames.
        let _ = save_index_to(index, &mut w).and_then(|()| Ok(w.flush()?));
        return Ok(());
    }
    let mut w = std::io::BufWriter::new(&file);
    save_index_to(index, &mut w)?;
    w.flush()?;
    drop(w);
    // The rename only publishes durable bytes: fsync before either rename.
    file.sync_all()?;
    drop(file);
    if kill == Some(KillPoint::BeforeBackupRename) {
        return Ok(());
    }
    if path.exists() {
        std::fs::rename(path, prev_path(path))?;
    }
    if kill == Some(KillPoint::BetweenRenames) {
        return Ok(());
    }
    std::fs::rename(&tmp, path)?;
    if kill == Some(KillPoint::BeforeDirSync) {
        return Ok(());
    }
    // Make the renames themselves durable. Best-effort: directory fsync is
    // not supported everywhere, and the snapshot is already valid without it.
    if let Some(dir) = path.parent() {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Opens and parses `<path>`; on any failure retries `<path>.prev` (the
/// previous generation left by [`save_index`]), warning on stderr. Returns
/// the primary error when both generations fail.
fn load_with_fallback<T>(
    path: &Path,
    parse: impl Fn(&mut dyn Read) -> Result<T, StoreError>,
) -> Result<T, StoreError> {
    let _span = td_obs::ENABLED
        .then(|| td_obs::PhaseTimer::observing(td_obs::metrics().snapshot_load_seconds.clone()));
    let primary = std::fs::File::open(path)
        .map_err(StoreError::from)
        .and_then(|f| parse(&mut std::io::BufReader::new(f)));
    let err = match primary {
        Ok(value) => return Ok(value),
        Err(err) => err,
    };
    let prev = prev_path(path);
    let fallback = std::fs::File::open(&prev)
        .map_err(StoreError::from)
        .and_then(|f| parse(&mut std::io::BufReader::new(f)));
    match fallback {
        Ok(value) => {
            if td_obs::ENABLED {
                td_obs::metrics()
                    .snapshot_fallback(err.variant_name())
                    .inc();
            }
            eprintln!(
                "td-api: snapshot {} unreadable ({err}); \
                 loaded previous generation {}",
                path.display(),
                prev.display()
            );
            Ok(value)
        }
        Err(_) => Err(err),
    }
}

/// Loads an index snapshot from a stream, dispatching on the header's
/// backend tag. Returns the backend together with the reconstructed index.
pub fn load_index_from(
    mut r: &mut dyn Read,
) -> Result<(Backend, Box<dyn RoutingIndex>), StoreError> {
    let header = format::read_header(&mut r)?;
    let index: Box<dyn RoutingIndex> = match header.backend {
        BackendTag::TdBasic | BackendTag::TdAppro | BackendTag::TdDp => {
            let index = TdTreeIndex::read_from(&mut r)?;
            if tree_tag(&index) != header.backend {
                return Err(StoreError::invalid(
                    "selection strategy disagrees with the header's backend tag",
                ));
            }
            Box::new(index)
        }
        BackendTag::TdH2h => Box::new(TdH2h::read_from(&mut r)?),
        BackendTag::TdGtree => Box::new(TdGtree::read_from(&mut r)?),
        BackendTag::Dijkstra => Box::new(DijkstraOracle::read_from(&mut r)?),
        BackendTag::AStarCh => Box::new(crate::AStarChIndex::read_from(&mut r)?),
    };
    section::read_end(&mut r)?;
    Ok((Backend::from_snapshot_tag(header.backend), index))
}

/// Loads a `.tdx` snapshot from `path`, reconstructing whichever backend it
/// holds behind the uniform [`RoutingIndex`] trait. When `path` is missing,
/// truncated or corrupt, falls back to the `<path>.prev` previous
/// generation (see the module docs); errors only when both fail.
pub fn load_index(path: impl AsRef<Path>) -> Result<Box<dyn RoutingIndex>, StoreError> {
    load_with_fallback(path.as_ref(), |mut r| {
        load_index_from(&mut r).map(|(_, index)| index)
    })
}

/// Loads a TD-tree-family snapshot (`TD-basic` / `TD-appro` / `TD-dp`) as a
/// concrete [`TdTreeIndex`] — the form the [`crate::LiveIndex`] double
/// buffer needs (it requires `IncrementalIndex + Clone`, which the trait
/// object cannot provide). Falls back to `<path>.prev` like [`load_index`].
pub fn load_tree_index(path: impl AsRef<Path>) -> Result<TdTreeIndex, StoreError> {
    load_with_fallback(path.as_ref(), |mut f| {
        let header = format::read_header(&mut f)?;
        match header.backend {
            BackendTag::TdBasic | BackendTag::TdAppro | BackendTag::TdDp => {}
            other => {
                return Err(StoreError::invalid(format!(
                    "snapshot holds {other}, not a TD-tree-family index \
                     (TD-basic / TD-appro / TD-dp)"
                )))
            }
        }
        let index = TdTreeIndex::read_from(&mut f)?;
        if tree_tag(&index) != header.backend {
            return Err(StoreError::invalid(
                "selection strategy disagrees with the header's backend tag",
            ));
        }
        section::read_end(&mut f)?;
        Ok(index)
    })
}
