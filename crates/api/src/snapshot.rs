//! Saving and loading built indexes as `.tdx` snapshots.
//!
//! The paper's preprocessing is the expensive phase; queries are cheap. A
//! production router therefore restarts from a snapshot, not a rebuild:
//! [`save_index`] writes any [`RoutingIndex`] trait object as a versioned,
//! checksummed `.tdx` file, and [`load_index`] reconstructs the same backend
//! — dispatching on the header's backend tag — answering every query
//! **bit-identically** to the freshly built index, in a load that is a
//! linear copy of flat arrays rather than a re-run of elimination,
//! selection or partitioning.
//!
//! The in-memory variants ([`save_index_to`] / [`load_index_from`]) work
//! over any `io::Write`/`io::Read`, which the conformance suite and the
//! corruption tests use to round-trip through plain byte buffers.

use crate::backend::Backend;
use crate::index::RoutingIndex;
use crate::oracle::DijkstraOracle;
use std::io::{Read, Write};
use std::path::Path;
use td_core::TdTreeIndex;
use td_gtree::TdGtree;
use td_h2h::TdH2h;
use td_store::{format, section, BackendTag, Persist, StoreError};

impl Backend {
    /// The snapshot backend tag of this backend.
    pub fn snapshot_tag(&self) -> BackendTag {
        match self {
            Backend::TdBasic => BackendTag::TdBasic,
            Backend::TdAppro => BackendTag::TdAppro,
            Backend::TdDp => BackendTag::TdDp,
            Backend::TdH2h => BackendTag::TdH2h,
            Backend::TdGtree => BackendTag::TdGtree,
            Backend::Dijkstra => BackendTag::Dijkstra,
            Backend::AStarCh => BackendTag::AStarCh,
        }
    }

    /// The backend named by a snapshot tag.
    pub fn from_snapshot_tag(tag: BackendTag) -> Backend {
        match tag {
            BackendTag::TdBasic => Backend::TdBasic,
            BackendTag::TdAppro => Backend::TdAppro,
            BackendTag::TdDp => Backend::TdDp,
            BackendTag::TdH2h => Backend::TdH2h,
            BackendTag::TdGtree => Backend::TdGtree,
            BackendTag::Dijkstra => Backend::Dijkstra,
            BackendTag::AStarCh => Backend::AStarCh,
        }
    }
}

/// The tag a TD-tree index snapshots under, derived from its strategy.
pub(crate) fn tree_tag(index: &TdTreeIndex) -> BackendTag {
    use td_core::SelectionStrategy::*;
    match index.options.strategy {
        Basic => BackendTag::TdBasic,
        Greedy { .. } => BackendTag::TdAppro,
        Dp { .. } => BackendTag::TdDp,
        All => BackendTag::TdH2h,
    }
}

/// Writes `index` as a complete snapshot stream (header + body + end
/// marker) into `w`.
pub fn save_index_to(index: &dyn RoutingIndex, w: &mut dyn Write) -> Result<(), StoreError> {
    index.write_snapshot(w)
}

/// Saves `index` as a `.tdx` file at `path`.
pub fn save_index(index: &dyn RoutingIndex, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    save_index_to(index, &mut f)?;
    f.flush()?;
    Ok(())
}

/// Loads an index snapshot from a stream, dispatching on the header's
/// backend tag. Returns the backend together with the reconstructed index.
pub fn load_index_from(
    mut r: &mut dyn Read,
) -> Result<(Backend, Box<dyn RoutingIndex>), StoreError> {
    let header = format::read_header(&mut r)?;
    let index: Box<dyn RoutingIndex> = match header.backend {
        BackendTag::TdBasic | BackendTag::TdAppro | BackendTag::TdDp => {
            let index = TdTreeIndex::read_from(&mut r)?;
            if tree_tag(&index) != header.backend {
                return Err(StoreError::invalid(
                    "selection strategy disagrees with the header's backend tag",
                ));
            }
            Box::new(index)
        }
        BackendTag::TdH2h => Box::new(TdH2h::read_from(&mut r)?),
        BackendTag::TdGtree => Box::new(TdGtree::read_from(&mut r)?),
        BackendTag::Dijkstra => Box::new(DijkstraOracle::read_from(&mut r)?),
        BackendTag::AStarCh => Box::new(crate::AStarChIndex::read_from(&mut r)?),
    };
    section::read_end(&mut r)?;
    Ok((Backend::from_snapshot_tag(header.backend), index))
}

/// Loads a `.tdx` snapshot from `path`, reconstructing whichever backend it
/// holds behind the uniform [`RoutingIndex`] trait.
pub fn load_index(path: impl AsRef<Path>) -> Result<Box<dyn RoutingIndex>, StoreError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    load_index_from(&mut f).map(|(_, index)| index)
}

/// Loads a TD-tree-family snapshot (`TD-basic` / `TD-appro` / `TD-dp`) as a
/// concrete [`TdTreeIndex`] — the form the [`crate::LiveIndex`] double
/// buffer needs (it requires `IncrementalIndex + Clone`, which the trait
/// object cannot provide).
pub fn load_tree_index(path: impl AsRef<Path>) -> Result<TdTreeIndex, StoreError> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path)?);
    let header = format::read_header(&mut f)?;
    match header.backend {
        BackendTag::TdBasic | BackendTag::TdAppro | BackendTag::TdDp => {}
        other => {
            return Err(StoreError::invalid(format!(
                "snapshot holds {other}, not a TD-tree-family index \
                 (TD-basic / TD-appro / TD-dp)"
            )))
        }
    }
    let index = TdTreeIndex::read_from(&mut f)?;
    if tree_tag(&index) != header.backend {
        return Err(StoreError::invalid(
            "selection strategy disagrees with the header's backend tag",
        ));
    }
    section::read_end(&mut f)?;
    Ok(index)
}
