//! The [`RoutingIndex`] trait and its implementations for every backend.

use crate::astar_ch::{AStarChIndex, AStarChScratch};
use crate::bounded::{BoundedAnswer, QueryError};
use crate::oracle::DijkstraOracle;
use crate::session::{QuerySession, SessionScratch};
use td_core::{CostScratch, ProfileScratch, TdTreeIndex, UpdateStats};
use td_dijkstra::QueryBudget;
use td_graph::{Path, TdGraph, VertexId};
use td_gtree::{GtreeScratch, TdGtree};
use td_h2h::TdH2h;
use td_obs::{QueryTrace, SearchStats};
use td_plf::Plf;

/// Construction-time metrics every backend reports uniformly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IndexStats {
    /// Total construction wall time, seconds (0 for the non-index oracle).
    pub construction_secs: f64,
    /// Number of precomputed pair entries (shortcut pairs, labels, matrix
    /// cells; 0 when not applicable).
    pub precomputed_pairs: usize,
    /// Total stored interpolation points across precomputed functions.
    pub stored_points: usize,
}

/// The unified query interface over every index family in the workspace.
///
/// All methods take `&self` — indexes are immutable once built (see
/// [`IncrementalIndex`] for updates) and safe to share across threads. The
/// `*_in` variants thread a [`SessionScratch`] through the call so repeated
/// queries reuse buffers; [`QuerySession`] packages that pattern.
pub trait RoutingIndex: Send + Sync {
    /// The backend's display name, as used in the paper's tables.
    fn backend_name(&self) -> &'static str;

    /// The underlying graph (kept by every backend for path expansion,
    /// updates and examples).
    fn graph(&self) -> &TdGraph;

    /// Travel cost query `Q(s, d, t)`.
    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64>;

    /// Shortest travel cost *function* query `f_{s,d}(t)`.
    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf>;

    /// Travel cost and the shortest path itself.
    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)>;

    /// Index memory in bytes. Precomputed structures only — the input graph
    /// is not counted, since every compared method shares it. The one
    /// exception is the non-index [`crate::DijkstraOracle`], which has no
    /// precomputed structures and reports the graph's weight functions (its
    /// entire working set) so the uniform `memory_bytes() > 0` accounting
    /// holds; exclude it from index-memory comparisons.
    fn memory_bytes(&self) -> usize;

    /// Construction statistics.
    fn build_stats(&self) -> IndexStats;

    /// Fresh scratch sized for this backend. The default is an empty scratch
    /// for backends whose queries have no reusable state.
    fn new_scratch(&self) -> SessionScratch {
        SessionScratch::none()
    }

    /// [`RoutingIndex::query_cost`] reusing `scratch` — the hot path.
    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let _ = scratch;
        self.query_cost(s, d, t)
    }

    /// [`RoutingIndex::query_profile`] reusing `scratch`.
    fn query_profile_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        let _ = scratch;
        self.query_profile(s, d)
    }

    /// [`RoutingIndex::query_path`] reusing `scratch`.
    fn query_path_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        let _ = scratch;
        self.query_path(s, d, t)
    }

    /// Budget-bounded travel cost query: validates the inputs, then answers
    /// along the degradation ladder **exact → bounded → error**. A completed
    /// search returns [`BoundedAnswer::Exact`], bit-identical to
    /// [`RoutingIndex::query_cost`]. When the budget runs out, search
    /// backends (TD-Dijkstra, TD-A\*-CH) degrade to a flagged
    /// [`BoundedAnswer::Approximate`] interval proved by their frontier;
    /// label/matrix backends answer exactly in near-constant time, so for
    /// them the settle cap is inapplicable and only an already-expired
    /// deadline turns into [`QueryError::BudgetExhausted`].
    fn query_cost_bounded(
        &self,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        let mut scratch = self.new_scratch();
        self.query_cost_bounded_in(&mut scratch, s, d, t, budget)
    }

    /// [`RoutingIndex::query_cost_bounded`] reusing `scratch` — the hot path.
    fn query_cost_bounded_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        crate::bounded::validate_query(self.graph().num_vertices(), s, d, t)?;
        if budget.deadline_passed() {
            return Err(QueryError::BudgetExhausted);
        }
        Ok(BoundedAnswer::Exact(self.query_cost_in(scratch, s, d, t)))
    }

    /// Drains the [`SearchStats`] the most recent `*_in` query left in
    /// `scratch`. Search backends (TD-Dijkstra, TD-A\*-CH, TD-G-tree)
    /// override this; the default `None` covers label/matrix backends whose
    /// queries run no graph search. Draining resets the scratch counters,
    /// so each query's stats are observed exactly once.
    fn take_search_stats(&self, scratch: &mut SessionScratch) -> Option<SearchStats> {
        let _ = scratch;
        None
    }

    /// [`RoutingIndex::query_cost`] plus a per-query [`QueryTrace`] (wall
    /// time and search counters). With `td-obs` built in `disabled` mode
    /// the trace is all zeros and the clock is never read.
    fn query_cost_traced(&self, s: VertexId, d: VertexId, t: f64) -> (Option<f64>, QueryTrace) {
        let mut scratch = self.new_scratch();
        self.query_cost_traced_in(&mut scratch, s, d, t)
    }

    /// [`RoutingIndex::query_cost_traced`] reusing `scratch` — the traced
    /// hot path: the underlying query runs unchanged, then the scratch's
    /// counters are drained (no allocation once the scratch is warmed).
    fn query_cost_traced_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> (Option<f64>, QueryTrace) {
        let start = td_obs::ENABLED.then(std::time::Instant::now);
        let cost = self.query_cost_in(scratch, s, d, t);
        let mut trace = QueryTrace::default();
        if let Some(start) = start {
            trace.stats = self.take_search_stats(scratch).unwrap_or_default();
            trace.nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        }
        (cost, trace)
    }

    /// Writes this index as a complete `.tdx` snapshot stream — header
    /// (with this backend's tag), body sections, end marker — such that
    /// [`crate::load_index_from`] reconstructs a query-identical index.
    /// Every in-workspace backend overrides this; the default rejects the
    /// operation so exotic third-party implementors are not forced to
    /// invent a format.
    fn write_snapshot(&self, w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        let _ = w;
        Err(td_store::StoreError::Unsupported(
            "this backend does not implement snapshot persistence",
        ))
    }
}

// A boxed index (what `load_index` returns) is itself a `RoutingIndex`, so
// generic consumers with `I: RoutingIndex + Sized` bounds — `LiveIndex<I>`,
// `TdServer<I>` — can serve a `Box<dyn RoutingIndex>` without re-dispatching
// on the backend. Every method forwards to the inner implementation,
// defaults included, so overrides are never shadowed by the trait defaults.
impl<T: RoutingIndex + ?Sized> RoutingIndex for Box<T> {
    fn backend_name(&self) -> &'static str {
        (**self).backend_name()
    }
    fn graph(&self) -> &TdGraph {
        (**self).graph()
    }
    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        (**self).query_cost(s, d, t)
    }
    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        (**self).query_profile(s, d)
    }
    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        (**self).query_path(s, d, t)
    }
    fn memory_bytes(&self) -> usize {
        (**self).memory_bytes()
    }
    fn build_stats(&self) -> IndexStats {
        (**self).build_stats()
    }
    fn new_scratch(&self) -> SessionScratch {
        (**self).new_scratch()
    }
    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        (**self).query_cost_in(scratch, s, d, t)
    }
    fn query_profile_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        (**self).query_profile_in(scratch, s, d)
    }
    fn query_path_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        (**self).query_path_in(scratch, s, d, t)
    }
    fn query_cost_bounded(
        &self,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        (**self).query_cost_bounded(s, d, t, budget)
    }
    fn query_cost_bounded_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        (**self).query_cost_bounded_in(scratch, s, d, t, budget)
    }
    fn take_search_stats(&self, scratch: &mut SessionScratch) -> Option<SearchStats> {
        (**self).take_search_stats(scratch)
    }
    fn query_cost_traced(&self, s: VertexId, d: VertexId, t: f64) -> (Option<f64>, QueryTrace) {
        (**self).query_cost_traced(s, d, t)
    }
    fn query_cost_traced_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> (Option<f64>, QueryTrace) {
        (**self).query_cost_traced_in(scratch, s, d, t)
    }
    fn write_snapshot(&self, w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        (**self).write_snapshot(w)
    }
}

/// Extension methods that need `Self: Sized` (use [`QuerySession::new`]
/// directly on `dyn RoutingIndex`).
pub trait RoutingIndexExt: RoutingIndex + Sized {
    /// A statically-dispatched query session over this index.
    fn session(&self) -> QuerySession<'_, Self> {
        QuerySession::new(self)
    }
}

impl<I: RoutingIndex + Sized> RoutingIndexExt for I {}

/// The optional incremental-maintenance extension: apply edge-weight changes
/// in place instead of rebuilding.
pub trait IncrementalIndex: RoutingIndex {
    /// Applies weight changes to existing edges and repairs the index.
    /// Panics if the backend was not built with update support (for the
    /// TD-tree family: [`crate::IndexConfig::track_supports`]).
    fn update_edges(&mut self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats;
}

// ----------------------------------------------------------------------
// TD-tree (TD-basic / TD-appro / TD-dp, and TD-H2H via `All`)
// ----------------------------------------------------------------------

/// Per-session scratch of the TD-tree family.
#[derive(Clone, Debug, Default)]
pub(crate) struct TdTreeScratch {
    pub cost: CostScratch,
    pub profile: ProfileScratch,
}

/// True when the index was built without shortcuts (TD-basic): queries then
/// dispatch to the paper's basic entry points, skipping the shortcut-aware
/// engine's cut scan so measurements stay faithful to Algo. 3.
fn is_basic(index: &TdTreeIndex) -> bool {
    matches!(index.options.strategy, td_core::SelectionStrategy::Basic)
}

impl RoutingIndex for TdTreeIndex {
    fn backend_name(&self) -> &'static str {
        use td_core::SelectionStrategy::*;
        match self.options.strategy {
            Basic => "TD-basic",
            Greedy { .. } => "TD-appro",
            Dp { .. } => "TD-dp",
            All => "TD-H2H",
        }
    }

    fn graph(&self) -> &TdGraph {
        TdTreeIndex::graph(self)
    }

    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        if is_basic(self) {
            TdTreeIndex::query_cost_basic(self, s, d, t)
        } else {
            TdTreeIndex::query_cost(self, s, d, t)
        }
    }

    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if is_basic(self) {
            TdTreeIndex::query_profile_basic(self, s, d)
        } else {
            TdTreeIndex::query_profile(self, s, d)
        }
    }

    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        TdTreeIndex::query_path(self, s, d, t)
    }

    fn memory_bytes(&self) -> usize {
        TdTreeIndex::memory_bytes(self)
    }

    fn build_stats(&self) -> IndexStats {
        IndexStats {
            construction_secs: self.build_stats.total_secs(),
            precomputed_pairs: self.shortcuts().num_pairs(),
            stored_points: self.shortcuts().total_points() + self.tree_stats().stored_points,
        }
    }

    fn new_scratch(&self) -> SessionScratch {
        SessionScratch::new(TdTreeScratch::default())
    }

    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let sc: &mut TdTreeScratch = scratch.get_or_default();
        if is_basic(self) {
            self.query_cost_basic_with(&mut sc.cost, s, d, t)
        } else {
            self.query_cost_with(&mut sc.cost, s, d, t)
        }
    }

    fn query_profile_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        let sc: &mut TdTreeScratch = scratch.get_or_default();
        if is_basic(self) {
            self.query_profile_basic_with(&mut sc.profile, s, d)
        } else {
            self.query_profile_with(&mut sc.profile, s, d)
        }
    }

    fn query_path_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        let sc: &mut TdTreeScratch = scratch.get_or_default();
        self.query_path_with(&mut sc.cost, s, d, t)
    }

    fn write_snapshot(&self, mut w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        td_store::write_snapshot(self, crate::snapshot::tree_tag(self), &mut w)
    }
}

impl IncrementalIndex for TdTreeIndex {
    fn update_edges(&mut self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats {
        TdTreeIndex::update_edges(self, changes)
    }
}

// ----------------------------------------------------------------------
// TD-H2H
// ----------------------------------------------------------------------

impl RoutingIndex for TdH2h {
    fn backend_name(&self) -> &'static str {
        "TD-H2H"
    }

    fn graph(&self) -> &TdGraph {
        self.inner().graph()
    }

    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        TdH2h::query_cost(self, s, d, t)
    }

    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        TdH2h::query_profile(self, s, d)
    }

    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        TdH2h::query_path(self, s, d, t)
    }

    fn memory_bytes(&self) -> usize {
        TdH2h::memory_bytes(self)
    }

    fn build_stats(&self) -> IndexStats {
        IndexStats {
            construction_secs: self.construction_secs(),
            precomputed_pairs: self.num_labels(),
            stored_points: self.total_points(),
        }
    }

    fn new_scratch(&self) -> SessionScratch {
        SessionScratch::new(TdTreeScratch::default())
    }

    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let sc: &mut TdTreeScratch = scratch.get_or_default();
        self.query_cost_with(&mut sc.cost, s, d, t)
    }

    fn query_profile_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
    ) -> Option<Plf> {
        let sc: &mut TdTreeScratch = scratch.get_or_default();
        self.query_profile_with(&mut sc.profile, s, d)
    }

    fn query_path_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        let sc: &mut TdTreeScratch = scratch.get_or_default();
        self.query_path_with(&mut sc.cost, s, d, t)
    }

    fn write_snapshot(&self, mut w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        td_store::write_snapshot(self, td_store::BackendTag::TdH2h, &mut w)
    }
}

// ----------------------------------------------------------------------
// TD-G-tree
// ----------------------------------------------------------------------

impl RoutingIndex for TdGtree {
    fn backend_name(&self) -> &'static str {
        "TD-G-tree"
    }

    fn graph(&self) -> &TdGraph {
        TdGtree::graph(self)
    }

    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        TdGtree::query_cost(self, s, d, t)
    }

    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        TdGtree::query_profile(self, s, d)
    }

    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        TdGtree::query_path(self, s, d, t)
    }

    fn memory_bytes(&self) -> usize {
        TdGtree::memory_bytes(self)
    }

    fn build_stats(&self) -> IndexStats {
        IndexStats {
            construction_secs: self.build_secs,
            precomputed_pairs: self.num_entries(),
            stored_points: self.total_points(),
        }
    }

    fn new_scratch(&self) -> SessionScratch {
        SessionScratch::new(GtreeScratch::default())
    }

    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let sc: &mut GtreeScratch = scratch.get_or_default();
        self.query_cost_with(sc, s, d, t)
    }

    fn take_search_stats(&self, scratch: &mut SessionScratch) -> Option<SearchStats> {
        let sc: &mut GtreeScratch = scratch.get_or_default();
        Some(sc.take_search_stats())
    }

    fn write_snapshot(&self, mut w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        td_store::write_snapshot(self, td_store::BackendTag::TdGtree, &mut w)
    }
}

// ----------------------------------------------------------------------
// TD-Dijkstra oracle
// ----------------------------------------------------------------------

impl RoutingIndex for DijkstraOracle {
    fn backend_name(&self) -> &'static str {
        "TD-Dijkstra"
    }

    fn graph(&self) -> &TdGraph {
        DijkstraOracle::graph(self)
    }

    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        DijkstraOracle::query_cost(self, s, d, t)
    }

    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        DijkstraOracle::query_profile(self, s, d)
    }

    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        DijkstraOracle::query_path(self, s, d, t)
    }

    fn memory_bytes(&self) -> usize {
        DijkstraOracle::memory_bytes(self)
    }

    fn build_stats(&self) -> IndexStats {
        IndexStats::default()
    }

    fn new_scratch(&self) -> SessionScratch {
        SessionScratch::new(td_dijkstra::DijkstraScratch::default())
    }

    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let sc: &mut td_dijkstra::DijkstraScratch = scratch.get_or_default();
        td_dijkstra::shortest_path_cost_frozen_with(sc, self.frozen(), s, d, t)
    }

    fn query_path_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        let sc: &mut td_dijkstra::DijkstraScratch = scratch.get_or_default();
        td_dijkstra::shortest_path_frozen_with(sc, self.frozen(), s, d, t)
    }

    fn query_cost_bounded_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        crate::bounded::validate_query(self.graph().num_vertices(), s, d, t)?;
        let sc: &mut td_dijkstra::DijkstraScratch = scratch.get_or_default();
        Ok(
            td_dijkstra::shortest_path_cost_frozen_bounded_with(sc, self.frozen(), s, d, t, budget)
                .into(),
        )
    }

    fn take_search_stats(&self, scratch: &mut SessionScratch) -> Option<SearchStats> {
        let sc: &mut td_dijkstra::DijkstraScratch = scratch.get_or_default();
        Some(sc.stats.take())
    }

    fn write_snapshot(&self, mut w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        td_store::write_snapshot(self, td_store::BackendTag::Dijkstra, &mut w)
    }
}

// ----------------------------------------------------------------------
// TD-A*-CH
// ----------------------------------------------------------------------

impl RoutingIndex for AStarChIndex {
    fn backend_name(&self) -> &'static str {
        "TD-A*-CH"
    }

    fn graph(&self) -> &TdGraph {
        AStarChIndex::graph(self)
    }

    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        AStarChIndex::query_cost(self, s, d, t)
    }

    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        AStarChIndex::query_profile(self, s, d)
    }

    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.query_path_with(&mut AStarChScratch::default(), s, d, t)
    }

    fn memory_bytes(&self) -> usize {
        AStarChIndex::memory_bytes(self)
    }

    fn build_stats(&self) -> IndexStats {
        IndexStats {
            construction_secs: self.hierarchy().construction_secs(),
            precomputed_pairs: self.hierarchy().num_shortcuts(),
            // The hierarchy stores one scalar weight per (directed) up/down
            // edge — the CH analogue of interpolation points.
            stored_points: self.hierarchy().num_edges(),
        }
    }

    fn new_scratch(&self) -> SessionScratch {
        SessionScratch::new(AStarChScratch::default())
    }

    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        let sc: &mut AStarChScratch = scratch.get_or_default();
        self.query_cost_with(sc, s, d, t)
    }

    fn query_path_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<(f64, Path)> {
        let sc: &mut AStarChScratch = scratch.get_or_default();
        self.query_path_with(sc, s, d, t)
    }

    fn query_cost_bounded_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
        budget: &QueryBudget,
    ) -> Result<BoundedAnswer, QueryError> {
        crate::bounded::validate_query(self.graph().num_vertices(), s, d, t)?;
        let sc: &mut AStarChScratch = scratch.get_or_default();
        Ok(self.query_cost_bounded_with(sc, s, d, t, budget).into())
    }

    fn take_search_stats(&self, scratch: &mut SessionScratch) -> Option<SearchStats> {
        let sc: &mut AStarChScratch = scratch.get_or_default();
        Some(sc.search.stats.take())
    }

    fn write_snapshot(&self, mut w: &mut dyn std::io::Write) -> Result<(), td_store::StoreError> {
        td_store::write_snapshot(self, td_store::BackendTag::AStarCh, &mut w)
    }
}

impl IncrementalIndex for AStarChIndex {
    fn update_edges(&mut self, changes: &[(VertexId, VertexId, Plf)]) -> UpdateStats {
        AStarChIndex::update_edges(self, changes)
    }
}
