//! Snapshot persistence: file-level round trips, build-or-load caching,
//! and a deterministic byte-mangling pass over a real snapshot proving
//! that corrupt, truncated or mismatched input always surfaces as a typed
//! [`StoreError`] — never a panic, never a silently wrong index.

use td_api::{
    build_index, load_index, load_index_from, load_tree_index, save_index, save_index_to, Backend,
    IndexConfig, StoreError,
};
use td_gen::random_graph::seeded_graph;
use td_graph::TdGraph;

fn small_graph() -> TdGraph {
    seeded_graph(21, 40, 25, 3)
}

fn cfg() -> IndexConfig {
    IndexConfig {
        budget: 1_500,
        max_leaf: 8,
        threads: 1,
        ..Default::default()
    }
}

/// A fresh TD-appro snapshot as bytes.
fn snapshot_bytes(backend: Backend) -> Vec<u8> {
    let index = build_index(small_graph(), backend, &cfg());
    let mut buf = Vec::new();
    save_index_to(index.as_ref(), &mut buf).expect("save");
    buf
}

/// Unique scratch path inside the target-adjacent temp dir.
fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("td-road-snapshot-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{name}-{}.tdx", std::process::id()))
}

#[test]
fn every_backend_round_trips_through_a_file() {
    for backend in Backend::ALL {
        let index = build_index(small_graph(), backend, &cfg());
        let path = temp_path(&format!("roundtrip-{backend}"));
        save_index(index.as_ref(), &path).expect("save file");
        let loaded = load_index(&path).expect("load file");
        assert_eq!(loaded.backend_name(), index.backend_name());
        for (s, d, t) in [(0u32, 39u32, 100.0), (5, 17, 40_000.0), (30, 2, 80_000.0)] {
            assert_eq!(
                index.query_cost(s, d, t).map(f64::to_bits),
                loaded.query_cost(s, d, t).map(f64::to_bits),
                "{backend} s={s} d={d}"
            );
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn build_index_build_or_load_uses_the_snapshot() {
    let path = temp_path("build-or-load");
    std::fs::remove_file(&path).ok();
    let cfg = IndexConfig {
        snapshot_path: Some(path.clone()),
        ..cfg()
    };
    // First call builds and saves.
    let first = build_index(small_graph(), Backend::TdAppro, &cfg);
    assert!(path.exists(), "first build must write the snapshot");
    // Second call must *load*: pass a same-shape graph with a changed
    // weight and observe the snapshot's answers, not the new weight's
    // (the cache carries its own graph).
    let mut modified = small_graph();
    let e = modified.edges()[0].clone();
    modified
        .set_weight(0, td_plf::Plf::constant(e.weight.eval(0.0) + 5_000.0))
        .expect("valid weight");
    let second = build_index(modified, Backend::TdAppro, &cfg);
    for (s, d, t) in [(0u32, 39u32, 100.0), (7, 31, 50_000.0)] {
        assert_eq!(
            first.query_cost(s, d, t).map(f64::to_bits),
            second.query_cost(s, d, t).map(f64::to_bits),
            "second call did not serve from the snapshot"
        );
    }
    // A graph of a different *shape* is a stale cache entry: the call must
    // rebuild over the new graph instead of serving the old one.
    let bigger = seeded_graph(99, 55, 30, 3);
    let third = build_index(bigger, Backend::TdAppro, &cfg);
    assert_eq!(
        third.graph().num_vertices(),
        55,
        "stale-shape snapshot must be rebuilt"
    );
    // A different backend must NOT be served from this snapshot.
    let gtree = build_index(small_graph(), Backend::TdGtree, &cfg);
    assert_eq!(gtree.backend_name(), "TD-G-tree");
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_tree_index_accepts_tree_family_only() {
    let path = temp_path("tree-only");
    let tree = build_index(small_graph(), Backend::TdAppro, &cfg());
    save_index(tree.as_ref(), &path).expect("save");
    let loaded = load_tree_index(&path).expect("tree family loads");
    assert_eq!(
        loaded.query_cost(0, 39, 100.0),
        tree.query_cost(0, 39, 100.0)
    );

    let gtree = build_index(small_graph(), Backend::TdGtree, &cfg());
    save_index(gtree.as_ref(), &path).expect("save");
    // Saving the G-tree demoted the TD-appro snapshot to `<path>.prev`, so
    // the wrong-backend primary falls back to that previous generation.
    let fallback = load_tree_index(&path).expect("previous generation serves");
    assert_eq!(
        fallback.query_cost(0, 39, 100.0),
        tree.query_cost(0, 39, 100.0)
    );
    // With no previous generation, the mismatch is a typed error.
    let mut prev = path.clone().into_os_string();
    prev.push(".prev");
    std::fs::remove_file(&prev).expect("previous generation exists");
    match load_tree_index(&path) {
        Err(StoreError::Invalid(msg)) => {
            assert!(msg.contains("TD-tree-family"), "unhelpful error: {msg}")
        }
        Err(other) => panic!("expected a tree-family error, got {other:?}"),
        Ok(_) => panic!("a TD-G-tree snapshot must not load as a tree index"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn wrong_magic_version_and_backend_are_typed_errors() {
    let buf = snapshot_bytes(Backend::TdAppro);

    let mut bad = buf.clone();
    bad[0] = b'X';
    assert!(matches!(
        load_index_from(&mut bad.as_slice()),
        Err(StoreError::BadMagic)
    ));

    let mut bad = buf.clone();
    bad[8] = 0xFE; // format version
    assert!(matches!(
        load_index_from(&mut bad.as_slice()),
        Err(StoreError::UnsupportedVersion(_))
    ));

    let mut bad = buf.clone();
    bad[12] ^= 0xFF; // endianness marker
    assert!(matches!(
        load_index_from(&mut bad.as_slice()),
        Err(StoreError::BadEndianness)
    ));

    let mut bad = buf.clone();
    bad[16] = 0xEE; // unknown backend tag
    assert!(matches!(
        load_index_from(&mut bad.as_slice()),
        Err(StoreError::UnknownBackend(_))
    ));

    // A *valid but different* backend tag: the body no longer matches the
    // promised schema — rejected, not misinterpreted.
    let mut bad = buf.clone();
    bad[16] = 5; // claim TD-G-tree over a TD-appro body
    assert!(load_index_from(&mut bad.as_slice()).is_err());
}

#[test]
fn every_truncation_is_rejected() {
    let buf = snapshot_bytes(Backend::TdAppro);
    // Every strict prefix must fail with a typed error (no panic, no Ok).
    for cut in (0..buf.len()).step_by(257).chain([buf.len() - 1]) {
        match load_index_from(&mut &buf[..cut]) {
            Err(_) => {}
            Ok(_) => panic!("truncation at {cut}/{} loaded successfully", buf.len()),
        }
    }
}

#[test]
fn deterministic_bit_flips_never_panic_and_never_load_silently() {
    // Flip one bit at a deterministic sweep of positions over a real
    // snapshot. Every mangled stream must be rejected: payload flips by the
    // per-section CRC, header/structure flips by their own typed checks.
    let buf = snapshot_bytes(Backend::TdAppro);
    let step = (buf.len() / 64).max(1);
    for pos in (0..buf.len()).step_by(step) {
        for bit in [0u8, 4, 7] {
            let mut bad = buf.clone();
            bad[pos] ^= 1 << bit;
            if bad == buf {
                continue;
            }
            match load_index_from(&mut bad.as_slice()) {
                Err(_) => {}
                Ok(_) => panic!("bit flip at byte {pos} bit {bit} was not detected"),
            }
        }
    }
}

#[test]
fn trailing_garbage_is_rejected() {
    let mut buf = snapshot_bytes(Backend::TdAppro);
    buf.extend_from_slice(b"junk");
    assert!(matches!(
        load_index_from(&mut buf.as_slice()),
        Err(StoreError::TrailingData)
    ));
}
