//! Property tests: every batch entry point — `QuerySession::query_many` and
//! `ParallelExecutor::query_batch` at several worker counts — agrees with
//! individual `query_cost` calls, across random workloads of random
//! departure times.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use td_api::{build_index, Backend, IndexConfig, ParallelExecutor, QuerySession, RoutingIndex};
use td_gen::random_graph::seeded_graph;
use td_plf::DAY;

fn bits(results: &[Option<f64>]) -> Vec<Option<u64>> {
    results.iter().map(|c| c.map(f64::to_bits)).collect()
}

fn check_batches_match_singles(index: &dyn RoutingIndex, queries: &[(u32, u32, f64)]) {
    let singles: Vec<Option<f64>> = queries
        .iter()
        .map(|&(s, d, t)| index.query_cost(s, d, t))
        .collect();

    let mut session = QuerySession::new(index);
    let many = session.query_many(queries.iter().copied());
    assert_eq!(
        bits(&singles),
        bits(&many),
        "{}: query_many diverges from singles",
        index.backend_name()
    );

    for threads in [1, 3] {
        let mut exec = ParallelExecutor::new(index, threads);
        let batch = exec.query_batch(queries);
        assert_eq!(
            bits(&singles),
            bits(&batch),
            "{}: {threads}-thread query_batch diverges from singles",
            index.backend_name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn batch_entry_points_agree_with_singles(
        seed in 0u64..1_000,
        n in 12usize..32,
        batch_len in 1usize..48,
    ) {
        let g = seeded_graph(seed, n, n + n / 2, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let queries: Vec<(u32, u32, f64)> = (0..batch_len)
            .map(|_| {
                (
                    rng.gen_range(0..n) as u32,
                    rng.gen_range(0..n) as u32,
                    rng.gen_range(0.0..DAY),
                )
            })
            .collect();
        let cfg = IndexConfig { budget: 1_500, max_leaf: 8, ..Default::default() };
        // One sweep-based backend, one matrix-based, and the oracle: the
        // three scratch families behind the session machinery.
        for backend in [Backend::TdAppro, Backend::TdGtree, Backend::Dijkstra] {
            let index = build_index(g.clone(), backend, &cfg);
            check_batches_match_singles(index.as_ref(), &queries);
        }
    }
}
