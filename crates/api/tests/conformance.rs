//! The trait-level conformance suite, instantiated for every backend.

use rand::prelude::*;
use rand::rngs::StdRng;
use td_api::conformance::check_backend;
use td_api::{build_index, Backend, IncrementalIndex, IndexConfig, QuerySession, RoutingIndexExt};
use td_gen::random_graph::seeded_graph;
use td_graph::VertexId;
use td_plf::DAY;

fn workload(n: usize, count: usize, seed: u64) -> Vec<(VertexId, VertexId, f64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            (
                rng.gen_range(0..n) as u32,
                rng.gen_range(0..n) as u32,
                rng.gen_range(0.0..DAY),
            )
        })
        .collect()
}

#[test]
fn every_backend_conforms_on_random_graphs() {
    let cfg = IndexConfig {
        budget: 3_000,
        max_leaf: 12,
        ..Default::default()
    };
    for seed in 0..2u64 {
        let n = 40;
        let g = seeded_graph(seed, n, 28, 3);
        let queries = workload(n, 25, seed ^ 0xabcd);
        for backend in Backend::ALL {
            check_backend(backend, &g, &cfg, &queries);
        }
    }
}

#[test]
fn every_backend_conforms_on_a_disconnected_graph() {
    // Two components: reachability answers must agree (None on cross pairs).
    use td_graph::TdGraph;
    use td_plf::Plf;
    let mut g = TdGraph::with_vertices(6);
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
        g.add_edge(u, v, Plf::constant(30.0)).unwrap();
        g.add_edge(v, u, Plf::constant(45.0)).unwrap();
    }
    let queries: Vec<(u32, u32, f64)> = (0..6)
        .flat_map(|s| (0..6).map(move |d| (s, d, 1_000.0)))
        .collect();
    let cfg = IndexConfig {
        budget: 500,
        max_leaf: 4,
        ..Default::default()
    };
    for backend in Backend::ALL {
        check_backend(backend, &g, &cfg, &queries);
    }
}

#[test]
fn sessions_survive_interleaved_query_kinds() {
    // One session per backend, interleaving cost/profile/path queries in a
    // mixed order — buffer reuse must never leak state between query kinds.
    let n = 30;
    let g = seeded_graph(7, n, 20, 3);
    let cfg = IndexConfig {
        budget: 2_000,
        max_leaf: 8,
        ..Default::default()
    };
    for backend in Backend::ALL {
        let index = build_index(g.clone(), backend, &cfg);
        let mut session = QuerySession::new(index.as_ref());
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..40 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            let cost = session.query_cost(s, d, t);
            match rng.gen_range(0..3usize) {
                0 => {
                    let p = session.query_profile(s, d);
                    assert_eq!(p.is_some(), cost.is_some(), "{backend} s={s} d={d}");
                }
                1 => {
                    let p = session.query_path(s, d, t);
                    assert_eq!(p.is_some(), cost.is_some(), "{backend} s={s} d={d}");
                }
                _ => {}
            }
            assert_eq!(session.query_cost(s, d, t), cost, "{backend} s={s} d={d}");
        }
    }
}

#[test]
fn incremental_extension_repairs_the_td_tree() {
    use td_gen::random_graph::random_profile;
    let n = 25;
    let g = seeded_graph(3, n, 16, 3);
    let cfg = IndexConfig {
        budget: 1_000,
        track_supports: true,
        ..Default::default()
    };
    // Build through the factory, then use the concrete type for updates
    // (trait objects stay read-only; IncrementalIndex needs &mut).
    let mut index = td_core::TdTreeIndex::build(
        g.clone(),
        td_core::IndexOptions {
            strategy: td_core::SelectionStrategy::Greedy { budget: cfg.budget },
            threads: 0,
            track_supports: true,
        },
    );
    let mut rng = StdRng::seed_from_u64(17);
    let e = g.edges()[rng.gen_range(0..g.num_edges())].clone();
    let new_w = random_profile(&mut rng, 3, 100.0, 900.0);
    let stats = IncrementalIndex::update_edges(&mut index, &[(e.from, e.to, new_w.clone())]);
    assert!(stats.changed_edges <= 1);

    // Post-update answers must match a fresh build on the updated graph.
    let mut g2 = g.clone();
    let eid = g2.find_edge(e.from, e.to).expect("edge exists");
    g2.set_weight(eid, new_w).expect("valid weight");
    let fresh = build_index(g2, Backend::TdAppro, &cfg);
    let mut updated = index.session();
    for _ in 0..30 {
        let s = rng.gen_range(0..n) as u32;
        let d = rng.gen_range(0..n) as u32;
        let t = rng.gen_range(0.0..DAY);
        match (updated.query_cost(s, d, t), fresh.query_cost(s, d, t)) {
            (Some(a), Some(b)) => assert!((a - b).abs() < 1e-5, "s={s} d={d} t={t}: {a} vs {b}"),
            (None, None) => {}
            other => panic!("s={s} d={d}: {other:?}"),
        }
    }
}
