//! Crash-consistency kill-point sweep over the snapshot save pipeline.
//!
//! Every simulated crash point in [`save_index`]'s temp-write → fsync →
//! double-rename pipeline — including a mid-write I/O fault at every swept
//! byte offset of the snapshot — must leave the `.tdx` / `.tdx.prev`
//! generation pair in a state where [`load_index`] succeeds and answers
//! bit-identically to a complete generation. Never a panic, never an `Err`,
//! never a silently wrong index (when any complete generation exists).

use td_api::{
    build_index, load_index, save_index, save_index_with_kill_point, Backend, IndexConfig,
    KillPoint, RoutingIndex,
};
use td_gen::random_graph::seeded_graph;
use td_graph::TdGraph;
use td_plf::Plf;

const PROBES: [(u32, u32, f64); 4] = [
    (0, 39, 100.0),
    (5, 17, 40_000.0),
    (30, 2, 80_000.0),
    (3, 33, 10_000.0),
];

fn base_graph() -> TdGraph {
    seeded_graph(21, 40, 25, 3)
}

/// The same network with one edge slowed enough to move some probe answer,
/// standing in for the next index generation.
fn next_generation_graph() -> TdGraph {
    let mut g = base_graph();
    let w = g.edges()[0].weight.eval(0.0);
    g.set_weight(0, Plf::constant(w + 5_000.0)).expect("valid");
    g
}

fn cfg() -> IndexConfig {
    IndexConfig {
        budget: 1_500,
        max_leaf: 8,
        threads: 1,
        ..Default::default()
    }
}

/// Bit-exact probe fingerprint of an index.
fn fingerprint(index: &dyn RoutingIndex) -> Vec<Option<u64>> {
    PROBES
        .iter()
        .map(|&(s, d, t)| index.query_cost(s, d, t).map(f64::to_bits))
        .collect()
}

/// A fresh empty scratch directory unique to this test + process.
fn scenario_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("td-road-crash-tests")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("scenario dir");
    dir
}

#[test]
fn every_kill_point_leaves_a_loadable_generation() {
    let gen1 = build_index(base_graph(), Backend::AStarCh, &cfg());
    let gen2 = build_index(next_generation_graph(), Backend::AStarCh, &cfg());
    let fp1 = fingerprint(gen1.as_ref());
    let fp2 = fingerprint(gen2.as_ref());
    assert_ne!(fp1, fp2, "generations must be distinguishable");

    let mut snapshot = Vec::new();
    td_api::save_index_to(gen2.as_ref(), &mut snapshot).expect("save to bytes");
    let len = snapshot.len() as u64;

    // Mid-write faults swept across the whole snapshot, plus the structural
    // kill points around the renames. `expected` is None where either
    // generation is acceptable, Some(fp) where exactly one must be visible.
    let mut kills: Vec<(KillPoint, Option<&Vec<Option<u64>>>)> = Vec::new();
    let stride = (len / 13).max(1);
    let mut n = 0;
    while n < len {
        kills.push((KillPoint::DuringTempWrite(n), Some(&fp1)));
        n += stride;
    }
    kills.push((KillPoint::DuringTempWrite(len - 1), Some(&fp1)));
    kills.push((KillPoint::BeforeBackupRename, Some(&fp1)));
    kills.push((KillPoint::BetweenRenames, Some(&fp1)));
    kills.push((KillPoint::BeforeDirSync, Some(&fp2)));

    let dir = scenario_dir("kill-sweep");
    for (i, (kill, expected)) in kills.iter().enumerate() {
        let path = dir.join(format!("net-{i}.tdx"));
        save_index(gen1.as_ref(), &path).expect("seed generation 1");
        save_index_with_kill_point(gen2.as_ref(), &path, *kill)
            .unwrap_or_else(|e| panic!("{kill:?}: simulated crash must not error: {e}"));
        let loaded =
            load_index(&path).unwrap_or_else(|e| panic!("{kill:?}: load must succeed: {e}"));
        let fp = fingerprint(loaded.as_ref());
        match expected {
            Some(want) => assert_eq!(&&fp, want, "{kill:?}"),
            None => assert!(fp == fp1 || fp == fp2, "{kill:?}: {fp:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kill_sweep_holds_across_a_second_generation() {
    // After two complete saves (path = gen2, prev = gen1), a crashed third
    // save must still leave gen2 loadable.
    let gen1 = build_index(base_graph(), Backend::AStarCh, &cfg());
    let gen2 = build_index(next_generation_graph(), Backend::AStarCh, &cfg());
    let fp2 = fingerprint(gen2.as_ref());

    let dir = scenario_dir("second-gen");
    for (i, kill) in [
        KillPoint::DuringTempWrite(64),
        KillPoint::BeforeBackupRename,
        KillPoint::BetweenRenames,
    ]
    .into_iter()
    .enumerate()
    {
        let path = dir.join(format!("net-{i}.tdx"));
        save_index(gen1.as_ref(), &path).expect("generation 1");
        save_index(gen2.as_ref(), &path).expect("generation 2");
        save_index_with_kill_point(gen1.as_ref(), &path, kill).expect("simulated crash");
        let loaded = load_index(&path).expect("load after crash");
        assert_eq!(fingerprint(loaded.as_ref()), fp2, "{kill:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_primary_falls_back_to_the_previous_generation() {
    let gen1 = build_index(base_graph(), Backend::AStarCh, &cfg());
    let gen2 = build_index(next_generation_graph(), Backend::AStarCh, &cfg());
    let fp1 = fingerprint(gen1.as_ref());

    let dir = scenario_dir("bit-flip");
    let path = dir.join("net.tdx");
    save_index(gen1.as_ref(), &path).expect("generation 1");
    save_index(gen2.as_ref(), &path).expect("generation 2");

    // Bit-rot in the middle of the current generation: the CRC rejects it
    // and the load silently serves the previous generation instead.
    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, &bytes).expect("write corruption");

    let loaded = load_index(&path).expect("fallback load");
    assert_eq!(fingerprint(loaded.as_ref()), fp1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn first_generation_crash_errors_instead_of_panicking() {
    // With no previous generation there is nothing to fall back to: the
    // load must surface a typed StoreError, not panic or fabricate state.
    let gen1 = build_index(base_graph(), Backend::AStarCh, &cfg());
    let dir = scenario_dir("first-gen");
    let path = dir.join("net.tdx");
    save_index_with_kill_point(gen1.as_ref(), &path, KillPoint::DuringTempWrite(10))
        .expect("simulated crash");
    assert!(!path.exists(), "a crashed first save must not publish");
    assert!(load_index(&path).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tree_index_load_shares_the_fallback() {
    let gen1 = build_index(base_graph(), Backend::TdAppro, &cfg());
    let fp1 = fingerprint(gen1.as_ref());

    let dir = scenario_dir("tree-fallback");
    let path = dir.join("net.tdx");
    save_index(gen1.as_ref(), &path).expect("generation 1");
    save_index(gen1.as_ref(), &path).expect("generation 2 (identical)");
    let mut bytes = std::fs::read(&path).expect("read");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).expect("write corruption");

    let tree = td_api::load_tree_index(&path).expect("fallback load");
    assert_eq!(fingerprint(&tree), fp1);
    std::fs::remove_dir_all(&dir).ok();
}
