//! Property tests for budget-bounded queries: across random graphs, random
//! workloads and random settle caps, every backend's `query_cost_bounded`
//! either answers **bit-identically** to the exact `query_cost`, or returns
//! a flagged interval containing the exact answer, or a typed error. It
//! never makes an unflagged wrong exact claim, and never claims
//! unreachability it hasn't proven.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use td_api::{
    build_index, Backend, BoundedAnswer, IndexConfig, QueryBudget, QueryError, RoutingIndex,
};
use td_gen::random_graph::seeded_graph;
use td_plf::DAY;

fn check_bounded_soundness(
    index: &dyn RoutingIndex,
    queries: &[(u32, u32, f64)],
    budget: &QueryBudget,
) {
    let name = index.backend_name();
    for &(s, d, t) in queries {
        let exact = index.query_cost(s, d, t);
        match index.query_cost_bounded(s, d, t, budget) {
            Ok(answer) => {
                assert!(
                    answer.is_consistent_with(exact, td_api::conformance::COST_EPS),
                    "{name} s={s} d={d} t={t} {budget:?}: {answer:?} vs exact {exact:?}"
                );
                if let BoundedAnswer::Exact(cost) = answer {
                    assert_eq!(
                        cost.map(f64::to_bits),
                        exact.map(f64::to_bits),
                        "{name} s={s} d={d} t={t} {budget:?}: non-bit-identical exact claim"
                    );
                }
            }
            Err(QueryError::BudgetExhausted) => {}
            Err(e) => panic!("{name} s={s} d={d} t={t}: unexpected error {e}"),
        }
        if budget.is_unlimited() {
            assert!(
                index
                    .query_cost_bounded(s, d, t, budget)
                    .unwrap()
                    .is_exact(),
                "{name} s={s} d={d}: unlimited budget degraded"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn bounded_answers_are_sound_for_every_backend(
        seed in 0u64..1_000,
        n in 12usize..28,
        batch_len in 1usize..24,
        cap in 0u64..5_000,
    ) {
        let g = seeded_graph(seed, n, n + n / 2, 3);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb0d6e7);
        let queries: Vec<(u32, u32, f64)> = (0..batch_len)
            .map(|_| {
                (
                    rng.gen_range(0..n) as u32,
                    rng.gen_range(0..n) as u32,
                    rng.gen_range(0.0..DAY),
                )
            })
            .collect();
        let cfg = IndexConfig {
            budget: 2_000,
            max_leaf: 6,
            threads: 1,
            ..Default::default()
        };
        for backend in Backend::ALL {
            let index = build_index(g.clone(), backend, &cfg);
            for budget in [QueryBudget::settles(cap), QueryBudget::UNLIMITED] {
                check_bounded_soundness(index.as_ref(), &queries, &budget);
            }
        }
    }
}
