//! Compile-time thread-safety pinning.
//!
//! The concurrent query engine shares one built index across worker threads
//! (`Arc<dyn RoutingIndex>`, `ParallelExecutor`, `LiveIndex`) and moves
//! per-worker scratch into scoped threads. These assertions pin every link
//! of that chain as `Send + Sync` (or `Send` for the per-thread state), so
//! a future `Rc`/`Cell`/raw-pointer regression anywhere in the stack fails
//! to *compile* rather than failing — or worse, racing — at runtime.

use std::sync::Arc;
use td_api::{
    AStarChIndex, AStarChScratch, DijkstraOracle, LiveIndex, ParallelExecutor, QuerySession,
    RoutingIndex, SessionScratch,
};
use td_core::{FrozenTd, TdTreeIndex};

fn assert_send_sync<T: Send + Sync + ?Sized>() {}
fn assert_send<T: Send + ?Sized>() {}

#[test]
fn frozen_views_are_send_sync() {
    // The immutable query-time mirrors every backend reads from.
    assert_send_sync::<td_plf::PlfArena>();
    assert_send_sync::<td_graph::CsrGraph>();
    assert_send_sync::<td_graph::FrozenGraph>();
    assert_send_sync::<FrozenTd>();
    assert_send_sync::<td_ch::ContractionHierarchy>();
}

#[test]
fn every_backend_is_send_sync() {
    // Concrete index types...
    assert_send_sync::<TdTreeIndex>();
    assert_send_sync::<td_h2h::TdH2h>();
    assert_send_sync::<td_gtree::TdGtree>();
    assert_send_sync::<DijkstraOracle>();
    assert_send_sync::<AStarChIndex>();
    // ...and the trait-object forms every harness actually shares. The
    // `Send + Sync` supertraits on `RoutingIndex` make these hold for any
    // future backend by construction.
    assert_send_sync::<dyn RoutingIndex>();
    assert_send_sync::<Box<dyn RoutingIndex>>();
    assert_send_sync::<Arc<dyn RoutingIndex>>();
}

#[test]
fn serving_layer_is_thread_safe() {
    // LiveIndex is shared by reference between the writer and all readers.
    assert_send_sync::<LiveIndex<TdTreeIndex>>();
    assert_send_sync::<LiveIndex<AStarChIndex>>();
    // Scratch and the session/executor wrappers move to worker threads.
    assert_send::<SessionScratch>();
    assert_send::<AStarChScratch>();
    assert_send::<QuerySession<dyn RoutingIndex>>();
    assert_send::<ParallelExecutor<dyn RoutingIndex>>();
}

/// The A\*-CH backend drives the `LiveIndex` double buffer like the TD-tree
/// family: per-worker potential scratch, epoch-tagged snapshots, updates by
/// re-freeze + re-customization under the kept contraction order.
#[test]
fn astar_ch_serves_through_live_index() {
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_gen::random_graph::{random_profile, seeded_graph};
    use td_plf::DAY;

    let n = 30;
    let g = seeded_graph(13, n, 20, 3);
    let live = LiveIndex::new(AStarChIndex::new(g.clone()));
    let mut rng = StdRng::seed_from_u64(31);

    for round in 0..3 {
        let snapshot = live.snapshot();
        // Readers answer from the snapshot (bit-identical to a fresh build
        // on that epoch's graph, checked via the shared scratchless entry).
        let fresh = AStarChIndex::new(snapshot.graph().clone());
        for _ in 0..20 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            assert_eq!(
                snapshot.query_cost(s, d, t).map(f64::to_bits),
                fresh.query_cost(s, d, t).map(f64::to_bits),
                "round={round} s={s} d={d} t={t}"
            );
        }
        // Writer repairs the standby copy and swaps.
        let e = g.edges()[rng.gen_range(0..g.num_edges())].clone();
        let w = random_profile(&mut rng, 3, 60.0, 600.0);
        live.apply(&[(e.from, e.to, w)]);
    }
    assert_eq!(live.epoch(), 3);
}
