//! Compile-time thread-safety pinning.
//!
//! The concurrent query engine shares one built index across worker threads
//! (`Arc<dyn RoutingIndex>`, `ParallelExecutor`, `LiveIndex`) and moves
//! per-worker scratch into scoped threads. These assertions pin every link
//! of that chain as `Send + Sync` (or `Send` for the per-thread state), so
//! a future `Rc`/`Cell`/raw-pointer regression anywhere in the stack fails
//! to *compile* rather than failing — or worse, racing — at runtime.

use std::sync::Arc;
use td_api::{
    DijkstraOracle, LiveIndex, ParallelExecutor, QuerySession, RoutingIndex, SessionScratch,
};
use td_core::{FrozenTd, TdTreeIndex};

fn assert_send_sync<T: Send + Sync + ?Sized>() {}
fn assert_send<T: Send + ?Sized>() {}

#[test]
fn frozen_views_are_send_sync() {
    // The immutable query-time mirrors every backend reads from.
    assert_send_sync::<td_plf::PlfArena>();
    assert_send_sync::<td_graph::CsrGraph>();
    assert_send_sync::<td_graph::FrozenGraph>();
    assert_send_sync::<FrozenTd>();
}

#[test]
fn every_backend_is_send_sync() {
    // Concrete index types...
    assert_send_sync::<TdTreeIndex>();
    assert_send_sync::<td_h2h::TdH2h>();
    assert_send_sync::<td_gtree::TdGtree>();
    assert_send_sync::<DijkstraOracle>();
    // ...and the trait-object forms every harness actually shares. The
    // `Send + Sync` supertraits on `RoutingIndex` make these hold for any
    // future backend by construction.
    assert_send_sync::<dyn RoutingIndex>();
    assert_send_sync::<Box<dyn RoutingIndex>>();
    assert_send_sync::<Arc<dyn RoutingIndex>>();
}

#[test]
fn serving_layer_is_thread_safe() {
    // LiveIndex is shared by reference between the writer and all readers.
    assert_send_sync::<LiveIndex<TdTreeIndex>>();
    // Scratch and the session/executor wrappers move to worker threads.
    assert_send::<SessionScratch>();
    assert_send::<QuerySession<dyn RoutingIndex>>();
    assert_send::<ParallelExecutor<dyn RoutingIndex>>();
}
