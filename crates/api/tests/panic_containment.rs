//! Panic containment at batch scale: one poisoned query inside a
//! 2048-query batch must come back as a typed [`QueryError::Panicked`]
//! while the other 2047 answer exactly — on every worker count, and again
//! on the same executor after its scratch was replaced.

use td_api::{CostQuery, IndexStats, ParallelExecutor, QueryError, RoutingIndex, SessionScratch};
use td_gen::random_graph::seeded_graph;
use td_graph::{Path, TdGraph, VertexId};
use td_plf::{Plf, DAY};

/// A delegating wrapper that panics on one designated (source, destination)
/// pair — standing in for a latent bug (corrupt label, NaN comparison,
/// out-of-bounds arc) tripping on exactly one unlucky query.
struct PanickyIndex {
    inner: td_api::DijkstraOracle,
    poisoned: (VertexId, VertexId),
}

impl RoutingIndex for PanickyIndex {
    fn backend_name(&self) -> &'static str {
        "panicky-test-wrapper"
    }
    fn graph(&self) -> &TdGraph {
        self.inner.graph()
    }
    fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        assert!(
            (s, d) != self.poisoned,
            "simulated latent bug on query {s} -> {d}"
        );
        self.inner.query_cost(s, d, t)
    }
    fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        self.inner.query_profile(s, d)
    }
    fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        self.inner.query_path(s, d, t)
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn build_stats(&self) -> IndexStats {
        self.inner.build_stats()
    }
    fn new_scratch(&self) -> SessionScratch {
        self.inner.new_scratch()
    }
    fn query_cost_in(
        &self,
        scratch: &mut SessionScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        assert!(
            (s, d) != self.poisoned,
            "simulated latent bug on query {s} -> {d}"
        );
        self.inner.query_cost_in(scratch, s, d, t)
    }
}

/// A deterministic 2048-query workload with the poisoned pair planted at
/// one slot.
fn workload(n: u32, poisoned: (VertexId, VertexId), slot: usize) -> Vec<CostQuery> {
    let mut queries: Vec<CostQuery> = (0..2048)
        .map(|i| {
            let s = (i * 37 + 11) as u32 % n;
            let mut d = (i * 101 + 5) as u32 % n;
            let t = (i as f64 * 977.0) % DAY;
            if (s, d) == poisoned {
                d = (d + 1) % n;
            }
            (s, d, t)
        })
        .collect();
    queries[slot] = (poisoned.0, poisoned.1, 3_600.0);
    queries
}

#[test]
fn one_poisoned_query_in_2048_leaves_the_rest_exact() {
    let g = seeded_graph(9, 48, 30, 3);
    let n = g.num_vertices() as u32;
    let poisoned = (7, 31);
    let slot = 1234;
    let oracle = td_api::DijkstraOracle::new(g.clone());
    let index = PanickyIndex {
        inner: td_api::DijkstraOracle::new(g),
        poisoned,
    };
    let queries = workload(n, poisoned, slot);

    for threads in [1, 4] {
        let mut exec = ParallelExecutor::new(&index, threads);
        for round in 0..2 {
            // Round 1 reruns on the executor whose scratch slot was
            // replaced after the panic: containment must not wedge reuse.
            let results = exec.try_query_batch(&queries);
            assert_eq!(results.len(), 2048);
            let mut panicked = 0;
            for (i, (r, &(s, d, t))) in results.iter().zip(&queries).enumerate() {
                if i == slot {
                    match r {
                        Err(QueryError::Panicked(msg)) => {
                            panicked += 1;
                            assert!(
                                msg.contains("simulated latent bug"),
                                "panic payload lost: {msg:?}"
                            );
                        }
                        other => panic!("threads={threads} round={round}: {other:?}"),
                    }
                } else {
                    let got = r.as_ref().unwrap_or_else(|e| {
                        panic!("threads={threads} round={round} slot {i}: {e}")
                    });
                    assert_eq!(
                        got.map(f64::to_bits),
                        oracle.query_cost(s, d, t).map(f64::to_bits),
                        "threads={threads} round={round} slot {i}"
                    );
                }
            }
            assert_eq!(panicked, 1, "threads={threads} round={round}");
        }
    }
}
