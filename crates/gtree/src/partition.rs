//! Hierarchical balanced graph partitioning.
//!
//! Recursive bisection: within a partition, run a BFS from an (approximate)
//! peripheral vertex pair and grow two regions breadth-first in alternation
//! until every vertex is assigned. On road-like graphs this yields balanced
//! halves with small cuts — the property TD-G-tree's border matrices depend
//! on.

use td_graph::{TdGraph, VertexId};

/// One node of the partition tree.
#[derive(Clone, Debug)]
pub struct PartitionNode {
    /// Vertices of this partition (only stored for leaves to save memory;
    /// internal nodes derive theirs from children).
    pub vertices: Vec<VertexId>,
    /// Border vertices: members with an edge to a vertex outside the
    /// partition.
    pub borders: Vec<VertexId>,
    /// Child indices (empty for leaves).
    pub children: Vec<usize>,
    /// Parent index (`None` for the root).
    pub parent: Option<usize>,
    /// Depth in the partition tree (root = 0).
    pub depth: u32,
}

/// The partition tree.
#[derive(Clone, Debug)]
pub struct PartitionTree {
    /// Nodes; index 0 is the root.
    pub nodes: Vec<PartitionNode>,
    /// Leaf index of every vertex.
    pub leaf_of: Vec<usize>,
}

/// Splits `vertices` (a connected-ish region of `g`) into two balanced halves
/// by alternating BFS growth from two far-apart seeds. Returns (left, right).
pub fn bisect(g: &TdGraph, vertices: &[VertexId]) -> (Vec<VertexId>, Vec<VertexId>) {
    assert!(vertices.len() >= 2);
    let member: std::collections::HashSet<VertexId> = vertices.iter().copied().collect();
    // Peripheral pair by double BFS (restricted to the region).
    let a = farthest(g, vertices[0], &member).unwrap_or(vertices[0]);
    let b = farthest(g, a, &member).unwrap_or(vertices[vertices.len() - 1]);
    let b = if a == b {
        vertices[vertices.len() - 1]
    } else {
        b
    };

    let mut side: std::collections::HashMap<VertexId, u8> = std::collections::HashMap::new();
    side.insert(a, 0);
    side.insert(b, 1);
    let mut frontiers: [std::collections::VecDeque<VertexId>; 2] =
        [[a].into_iter().collect(), [b].into_iter().collect()];
    let mut counts = [1usize, 1usize];
    let half = vertices.len().div_ceil(2);
    let mut assigned = 2usize;
    while assigned < vertices.len() {
        // Grow the smaller side first for balance.
        let order = if counts[0] <= counts[1] {
            [0usize, 1]
        } else {
            [1, 0]
        };
        let mut progressed = false;
        for &s in &order {
            if counts[s] > half {
                continue;
            }
            while let Some(v) = frontiers[s].pop_front() {
                let mut grew = false;
                for u in g.undirected_neighbors_iter(v) {
                    if member.contains(&u) && !side.contains_key(&u) {
                        side.insert(u, s as u8);
                        counts[s] += 1;
                        assigned += 1;
                        frontiers[s].push_back(u);
                        grew = true;
                        break;
                    }
                }
                if grew {
                    frontiers[s].push_back(v);
                    progressed = true;
                    break;
                }
            }
            if progressed {
                break;
            }
        }
        if !progressed {
            // Disconnected remainder: assign arbitrarily to the smaller side.
            for &v in vertices {
                if let std::collections::hash_map::Entry::Vacant(e) = side.entry(v) {
                    let s = if counts[0] <= counts[1] { 0 } else { 1 };
                    e.insert(s as u8);
                    counts[s] += 1;
                    assigned += 1;
                    frontiers[s].push_back(v);
                    break;
                }
            }
        }
    }
    let mut left = Vec::with_capacity(counts[0]);
    let mut right = Vec::with_capacity(counts[1]);
    for &v in vertices {
        if side[&v] == 0 {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // Degenerate guard: never return an empty side (with fewer than two
    // vertices both sides stay as they are).
    if left.is_empty() {
        if let Some(v) = right.pop() {
            left.push(v);
        }
    }
    if right.is_empty() {
        if let Some(v) = left.pop() {
            right.push(v);
        }
    }
    (left, right)
}

fn farthest(
    g: &TdGraph,
    from: VertexId,
    member: &std::collections::HashSet<VertexId>,
) -> Option<VertexId> {
    let mut seen: std::collections::HashSet<VertexId> = [from].into_iter().collect();
    let mut queue: std::collections::VecDeque<VertexId> = [from].into_iter().collect();
    let mut last = None;
    while let Some(v) = queue.pop_front() {
        last = Some(v);
        for u in g.undirected_neighbors_iter(v) {
            if member.contains(&u) && seen.insert(u) {
                queue.push_back(u);
            }
        }
    }
    last
}

impl PartitionTree {
    /// Recursively bisects `g` until every leaf has at most `max_leaf`
    /// vertices, then computes borders.
    pub fn build(g: &TdGraph, max_leaf: usize) -> PartitionTree {
        let n = g.num_vertices();
        assert!(n > 0);
        let all: Vec<VertexId> = (0..n as u32).collect();
        let mut nodes: Vec<PartitionNode> = vec![PartitionNode {
            vertices: all,
            borders: Vec::new(),
            children: Vec::new(),
            parent: None,
            depth: 0,
        }];
        // Recursive splitting (worklist).
        let mut work = vec![0usize];
        while let Some(idx) = work.pop() {
            if nodes[idx].vertices.len() <= max_leaf.max(2) {
                continue;
            }
            let (left, right) = bisect(g, &nodes[idx].vertices);
            let depth = nodes[idx].depth + 1;
            for part in [left, right] {
                let child = nodes.len();
                nodes.push(PartitionNode {
                    vertices: part,
                    borders: Vec::new(),
                    children: Vec::new(),
                    parent: Some(idx),
                    depth,
                });
                nodes[idx].children.push(child);
                work.push(child);
            }
            nodes[idx].vertices = Vec::new(); // internal nodes derive from children
        }

        // Leaf assignment.
        let mut leaf_of = vec![usize::MAX; n];
        for (idx, node) in nodes.iter().enumerate() {
            if node.children.is_empty() {
                for &v in &node.vertices {
                    leaf_of[v as usize] = idx;
                }
            }
        }
        debug_assert!(leaf_of.iter().all(|&l| l != usize::MAX));

        // Partition id of a vertex at a given node: "is v inside node idx"
        // resolved by walking up from its leaf.
        let inside = |v: VertexId, idx: usize, nodes: &[PartitionNode]| -> bool {
            let mut cur = leaf_of[v as usize];
            loop {
                if cur == idx {
                    return true;
                }
                match nodes[cur].parent {
                    Some(p) => cur = p,
                    None => return false,
                }
            }
        };

        // Borders per node: vertices with an edge endpoint outside the node.
        for idx in 0..nodes.len() {
            let members: Vec<VertexId> = collect_vertices(&nodes, idx);
            let mut borders: Vec<VertexId> = members
                .iter()
                .copied()
                .filter(|&v| {
                    g.undirected_neighbors_iter(v)
                        .any(|u| !inside(u, idx, &nodes))
                })
                .collect();
            borders.sort_unstable();
            borders.dedup();
            nodes[idx].borders = borders;
        }

        PartitionTree { nodes, leaf_of }
    }

    /// All vertices of node `idx` (leaves store them; internal nodes gather
    /// from children).
    pub fn vertices_of(&self, idx: usize) -> Vec<VertexId> {
        collect_vertices(&self.nodes, idx)
    }

    /// The partition-tree LCA of two leaves.
    pub fn lca(&self, mut a: usize, mut b: usize) -> usize {
        // The tree is built by `PartitionTree::build`, so every non-root node
        // has a parent and the walks below always meet at the latest at the
        // root; a missing parent can only mean a corrupted tree, where the
        // current node is the most sensible answer left.
        while self.nodes[a].depth > self.nodes[b].depth {
            let Some(p) = self.nodes[a].parent else {
                return a;
            };
            a = p;
        }
        while self.nodes[b].depth > self.nodes[a].depth {
            let Some(p) = self.nodes[b].parent else {
                return b;
            };
            b = p;
        }
        while a != b {
            let (Some(pa), Some(pb)) = (self.nodes[a].parent, self.nodes[b].parent) else {
                debug_assert!(false, "equal-depth nodes must share an ancestor");
                return a;
            };
            a = pa;
            b = pb;
        }
        a
    }

    /// Path of node indices from `from` up to (and including) `to`.
    pub fn path_up(&self, from: usize, to: usize) -> Vec<usize> {
        let mut p = Vec::new();
        self.path_up_into(from, to, &mut p);
        p
    }

    /// Allocation-free [`PartitionTree::path_up`]: fills `out` (after
    /// clearing it).
    pub fn path_up_into(&self, from: usize, to: usize, out: &mut Vec<usize>) {
        out.clear();
        out.push(from);
        let mut cur = from;
        while cur != to {
            let Some(p) = self.nodes[cur].parent else {
                debug_assert!(false, "`to` must be an ancestor of `from`");
                break;
            };
            cur = p;
            out.push(cur);
        }
    }
}

fn collect_vertices(nodes: &[PartitionNode], idx: usize) -> Vec<VertexId> {
    if nodes[idx].children.is_empty() {
        return nodes[idx].vertices.clone();
    }
    let mut out = Vec::new();
    let mut stack = vec![idx];
    while let Some(i) = stack.pop() {
        if nodes[i].children.is_empty() {
            out.extend_from_slice(&nodes[i].vertices);
        } else {
            stack.extend_from_slice(&nodes[i].children);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_gen::random_graph::seeded_graph;
    use td_gen::{network::RoadNetwork, RoadNetworkConfig};

    #[test]
    fn bisect_is_balanced() {
        let g = seeded_graph(1, 100, 60, 2);
        let all: Vec<u32> = (0..100).collect();
        let (l, r) = bisect(&g, &all);
        assert_eq!(l.len() + r.len(), 100);
        assert!(l.len() >= 30 && r.len() >= 30, "{} / {}", l.len(), r.len());
    }

    #[test]
    fn partition_tree_covers_all_vertices() {
        let g = seeded_graph(2, 120, 80, 2);
        let pt = PartitionTree::build(&g, 16);
        let mut count = 0;
        for (i, node) in pt.nodes.iter().enumerate() {
            if node.children.is_empty() {
                assert!(node.vertices.len() <= 16);
                assert!(!node.vertices.is_empty());
                count += node.vertices.len();
                for &v in &node.vertices {
                    assert_eq!(pt.leaf_of[v as usize], i);
                }
            } else {
                assert_eq!(node.children.len(), 2);
            }
        }
        assert_eq!(count, 120);
    }

    #[test]
    fn root_has_no_borders() {
        let g = seeded_graph(3, 60, 40, 2);
        let pt = PartitionTree::build(&g, 12);
        assert!(
            pt.nodes[0].borders.is_empty(),
            "nothing is outside the root"
        );
    }

    #[test]
    fn borders_have_crossing_edges() {
        let g = seeded_graph(4, 80, 50, 2);
        let pt = PartitionTree::build(&g, 12);
        for (idx, node) in pt.nodes.iter().enumerate() {
            if idx == 0 {
                continue;
            }
            let members: std::collections::HashSet<u32> = pt.vertices_of(idx).into_iter().collect();
            for &b in &node.borders {
                let crossing = g
                    .out_edges(b)
                    .iter()
                    .chain(g.in_edges(b).iter())
                    .any(|&(u, _)| !members.contains(&u));
                assert!(crossing, "border {b} of node {idx} has no crossing edge");
            }
        }
    }

    #[test]
    fn border_fraction_is_small_on_road_networks() {
        let net = RoadNetwork::generate(&RoadNetworkConfig {
            rows: 24,
            cols: 24,
            extra_edge_fraction: 0.15,
            ..Default::default()
        });
        let pt = PartitionTree::build(&net.graph, 32);
        // First-level split of a 576-vertex road grid: border set should be a
        // small fraction of the graph.
        let b = pt.nodes[pt.nodes[0].children[0]].borders.len();
        assert!(b < 100, "borders = {b}");
    }

    #[test]
    fn lca_and_path_up() {
        let g = seeded_graph(5, 100, 60, 2);
        let pt = PartitionTree::build(&g, 10);
        let leaves: Vec<usize> = (0..pt.nodes.len())
            .filter(|&i| pt.nodes[i].children.is_empty())
            .collect();
        for &a in &leaves {
            for &b in &leaves {
                let l = pt.lca(a, b);
                let pa = pt.path_up(a, l);
                let pb = pt.path_up(b, l);
                assert_eq!(*pa.last().unwrap(), l);
                assert_eq!(*pb.last().unwrap(), l);
                if a == b {
                    assert_eq!(l, a);
                }
            }
        }
    }
}
