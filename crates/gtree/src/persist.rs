//! Snapshot persistence ([`td_store::Persist`]) for [`TdGtree`].
//!
//! Persisted verbatim: the input graph, the partition tree (parents, depths,
//! leaf assignment, CSR-flattened vertex and border lists) and every node's
//! refined border matrix (anchors + the row-major `Option<Plf>` entries).
//! Loading **never re-runs partitioning or the all-pairs profile searches**
//! — the expensive part of G-tree construction; it only replays the same
//! linear `freeze()` used after construction to rebuild the contiguous
//! query arenas, and reindexes the anchor position maps.

use crate::index::{NodeMatrix, TdGtree};
use crate::partition::{PartitionNode, PartitionTree};
use std::collections::HashMap;
use std::io::{Read, Write};
use td_graph::TdGraph;
use td_plf::persist::{read_plf_list, write_plf_list};
use td_plf::PlfArena;
use td_store::section::{
    check_offsets, read_f64s, read_u32s, read_u64, tag4, write_f64s, write_u32s, write_u64,
};
use td_store::{Persist, StoreError};

const TAG_P_COUNT: u32 = tag4(*b"Pnum");
const TAG_P_PARENT: u32 = tag4(*b"Ppar");
const TAG_P_DEPTH: u32 = tag4(*b"Pdep");
const TAG_P_VERT_FIRST: u32 = tag4(*b"Pvf ");
const TAG_P_VERT: u32 = tag4(*b"Pvx ");
const TAG_P_BORD_FIRST: u32 = tag4(*b"Pbf ");
const TAG_P_BORD: u32 = tag4(*b"Pbd ");
const TAG_P_LEAF_OF: u32 = tag4(*b"Plo ");

const TAG_M_ANCHORS: u32 = tag4(*b"Manc");
const TAG_G_SECS: u32 = tag4(*b"Gsec");

/// Sentinel for "no parent" in the persisted parent array.
const NO_PARENT: u32 = u32::MAX;

fn write_partition_tree<W: Write>(w: &mut W, pt: &PartitionTree) -> Result<(), StoreError> {
    let nn = pt.nodes.len();
    write_u64(w, TAG_P_COUNT, nn as u64)?;
    let parent: Vec<u32> = pt
        .nodes
        .iter()
        .map(|nd| nd.parent.map_or(NO_PARENT, |p| p as u32))
        .collect();
    write_u32s(w, TAG_P_PARENT, &parent)?;
    let depth: Vec<u32> = pt.nodes.iter().map(|nd| nd.depth).collect();
    write_u32s(w, TAG_P_DEPTH, &depth)?;
    let mut vf = Vec::with_capacity(nn + 1);
    let mut vx = Vec::new();
    vf.push(0u32);
    for nd in &pt.nodes {
        vx.extend_from_slice(&nd.vertices);
        vf.push(vx.len() as u32);
    }
    write_u32s(w, TAG_P_VERT_FIRST, &vf)?;
    write_u32s(w, TAG_P_VERT, &vx)?;
    let mut bf = Vec::with_capacity(nn + 1);
    let mut bd = Vec::new();
    bf.push(0u32);
    for nd in &pt.nodes {
        bd.extend_from_slice(&nd.borders);
        bf.push(bd.len() as u32);
    }
    write_u32s(w, TAG_P_BORD_FIRST, &bf)?;
    write_u32s(w, TAG_P_BORD, &bd)?;
    let leaf_of: Vec<u32> = pt.leaf_of.iter().map(|&l| l as u32).collect();
    write_u32s(w, TAG_P_LEAF_OF, &leaf_of)
}

fn read_partition_tree<R: Read>(r: &mut R, n_graph: usize) -> Result<PartitionTree, StoreError> {
    let nn = read_u64(r, TAG_P_COUNT)? as usize;
    let parent = read_u32s(r, TAG_P_PARENT)?;
    let depth = read_u32s(r, TAG_P_DEPTH)?;
    let vf = read_u32s(r, TAG_P_VERT_FIRST)?;
    let vx = read_u32s(r, TAG_P_VERT)?;
    let bf = read_u32s(r, TAG_P_BORD_FIRST)?;
    let bd = read_u32s(r, TAG_P_BORD)?;
    let leaf_of = read_u32s(r, TAG_P_LEAF_OF)?;

    if nn == 0 || parent.len() != nn || depth.len() != nn {
        return Err(StoreError::invalid("partition tree arrays disagree"));
    }
    if vf.len() != nn + 1 || bf.len() != nn + 1 {
        return Err(StoreError::invalid("partition CSR arrays disagree"));
    }
    check_offsets(&vf, vx.len(), "partition vertices")?;
    check_offsets(&bf, bd.len(), "partition borders")?;
    if vx.iter().chain(bd.iter()).any(|&v| v as usize >= n_graph) {
        return Err(StoreError::invalid("partition vertex out of range"));
    }
    // Node 0 is the root; every other node's parent precedes it (creation
    // order) one level up — this implies acyclicity.
    if parent[0] != NO_PARENT || depth[0] != 0 {
        return Err(StoreError::invalid("partition root must be node 0"));
    }
    for i in 1..nn {
        let p = parent[i];
        if p == NO_PARENT || p as usize >= i {
            return Err(StoreError::invalid(
                "partition parent must precede its child",
            ));
        }
        if depth[i] != depth[p as usize] + 1 {
            return Err(StoreError::invalid("partition depth inconsistent"));
        }
    }
    let mut nodes: Vec<PartitionNode> = (0..nn)
        .map(|i| PartitionNode {
            vertices: vx[vf[i] as usize..vf[i + 1] as usize].to_vec(),
            borders: bd[bf[i] as usize..bf[i + 1] as usize].to_vec(),
            children: Vec::new(),
            parent: (parent[i] != NO_PARENT).then(|| parent[i] as usize),
            depth: depth[i],
        })
        .collect();
    for (i, &p) in parent.iter().enumerate().skip(1) {
        nodes[p as usize].children.push(i);
    }
    if leaf_of.len() != n_graph {
        return Err(StoreError::invalid("leaf assignment length mismatch"));
    }
    for &l in &leaf_of {
        let l = l as usize;
        if l >= nn || !nodes[l].children.is_empty() {
            return Err(StoreError::invalid("leaf assignment must name a leaf"));
        }
    }
    Ok(PartitionTree {
        nodes,
        leaf_of: leaf_of.into_iter().map(|l| l as usize).collect(),
    })
}

impl Persist for TdGtree {
    fn write_into<W: Write>(&self, w: &mut W) -> Result<(), StoreError> {
        self.graph.write_into(w)?;
        write_partition_tree(w, &self.pt)?;
        for m in &self.mats {
            write_u32s(w, TAG_M_ANCHORS, &m.anchors)?;
            write_plf_list(w, m.mat.iter().map(|f| f.as_ref()))?;
        }
        write_f64s(w, TAG_G_SECS, &[self.build_secs])
    }

    fn read_from<R: Read>(r: &mut R) -> Result<TdGtree, StoreError> {
        let graph = TdGraph::read_from(r)?;
        let pt = read_partition_tree(r, graph.num_vertices())?;
        let mut mats = Vec::with_capacity(pt.nodes.len());
        for _ in 0..pt.nodes.len() {
            let anchors = read_u32s(r, TAG_M_ANCHORS)?;
            let mat = read_plf_list(r)?;
            let k = anchors.len();
            if mat.len() != k * k {
                return Err(StoreError::invalid(format!(
                    "border matrix holds {} entries for {k} anchors",
                    mat.len()
                )));
            }
            if anchors.iter().any(|&a| a as usize >= graph.num_vertices()) {
                return Err(StoreError::invalid("matrix anchor out of range"));
            }
            let mut pos = HashMap::with_capacity(k);
            for (i, &v) in anchors.iter().enumerate() {
                if pos.insert(v, i).is_some() {
                    return Err(StoreError::invalid("duplicate matrix anchor"));
                }
            }
            let mut m = NodeMatrix {
                anchors,
                pos,
                mat,
                ids: Vec::new(),
                arena: PlfArena::new(),
            };
            // The same linear copy construction runs after refinement.
            m.freeze();
            mats.push(m);
        }
        let secs = read_f64s(r, TAG_G_SECS)?;
        if secs.len() != 1 || !secs[0].is_finite() || secs[0] < 0.0 {
            return Err(StoreError::invalid("bad construction-time record"));
        }
        Ok(TdGtree {
            graph,
            pt,
            mats,
            build_secs: secs[0],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::GtreeConfig;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    #[test]
    fn gtree_round_trips_bit_identically() {
        let n = 60;
        let g = seeded_graph(5, n, 40, 3);
        let gt = TdGtree::build(g, GtreeConfig { max_leaf: 10 });
        let mut buf = Vec::new();
        gt.write_into(&mut buf).unwrap();
        let mut r = buf.as_slice();
        let back = TdGtree::read_from(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back.num_entries(), gt.num_entries());
        assert_eq!(back.total_points(), gt.total_points());
        assert_eq!(back.num_partitions(), gt.num_partitions());

        let mut rng = StdRng::seed_from_u64(0x7777);
        for _ in 0..60 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            assert_eq!(
                gt.query_cost(s, d, t).map(f64::to_bits),
                back.query_cost(s, d, t).map(f64::to_bits),
                "s={s} d={d} t={t}"
            );
            assert_eq!(gt.query_profile(s, d), back.query_profile(s, d));
        }
    }

    #[test]
    fn truncated_gtree_stream_errors_out() {
        let g = seeded_graph(1, 30, 20, 3);
        let gt = TdGtree::build(g, GtreeConfig { max_leaf: 8 });
        let mut buf = Vec::new();
        gt.write_into(&mut buf).unwrap();
        for cut in (0..buf.len()).step_by(293) {
            assert!(TdGtree::read_from(&mut &buf[..cut]).is_err());
        }
    }
}
