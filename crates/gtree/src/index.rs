//! TD-G-tree: border travel-cost-function matrices and assembly queries.

use crate::partition::PartitionTree;
use std::collections::HashMap;
use std::time::Instant;
use td_dijkstra::{profile_search_frozen, shortest_path};
use td_graph::{GraphBuilder, Path, TdGraph, VertexId};
use td_plf::{eval_ids_at, ops::min_into, Plf, PlfArena, PlfId, PlfSlice, NO_PLF};

/// Reusable scratch for TD-G-tree scalar queries: the stage plan, the two
/// partition-tree paths and the two arrival hash maps are recycled across
/// queries (hash maps keep their capacity through `clear`, so repeated
/// queries stop allocating once warmed up).
#[derive(Clone, Debug, Default)]
pub struct GtreeScratch {
    plan: Vec<(usize, usize)>,
    path_s: Vec<usize>,
    path_d: Vec<usize>,
    cur: HashMap<VertexId, f64>,
    next: HashMap<VertexId, f64>,
    sweep: SweepScratch,
}

/// Reusable buffers for the batched border-matrix sweep
/// ([`relax_scalar_into`]): column lookups, running bests and the gathered
/// id/value runs handed to the `td-plf` batch kernel. `resize` reuses the
/// retained capacity, so warmed-up queries stop allocating here too.
#[derive(Clone, Debug, Default)]
struct SweepScratch {
    /// Column index per target (`usize::MAX` = not an anchor of this matrix).
    cols: Vec<usize>,
    /// Running best arrival per target, seeded from the carry-over arrivals.
    best: Vec<f64>,
    /// Arena ids surviving the min-bound prune for the current source.
    ids: Vec<PlfId>,
    /// Target slot of each gathered id, parallel to `ids`.
    slots: Vec<u32>,
    /// Batched evaluations, parallel to `ids`.
    vals: Vec<f64>,
    /// Per-query counters (reset by `query_cost_with`, drained through
    /// [`GtreeScratch::take_search_stats`]): matrix-entry relaxations,
    /// batched evaluations and min-bound prunes of the sweep.
    stats: td_obs::SearchStats,
}

impl GtreeScratch {
    /// Drains (returns and resets) the counters the most recent
    /// [`TdGtree::query_cost_with`] left behind.
    pub fn take_search_stats(&mut self) -> td_obs::SearchStats {
        self.sweep.stats.take()
    }
}

/// Configuration of the TD-G-tree.
#[derive(Clone, Copy, Debug)]
pub struct GtreeConfig {
    /// Maximum vertices per leaf partition (the original's τ).
    pub max_leaf: usize,
}

impl Default for GtreeConfig {
    fn default() -> Self {
        GtreeConfig { max_leaf: 32 }
    }
}

/// All-pairs travel-cost-function matrix over one node's anchor set.
///
/// The `mat` of owned [`Plf`]s is the *build/profile* representation (the
/// assembly passes min-merge and compound entries, and profile queries need
/// whole functions). After construction, [`NodeMatrix::freeze`] lays every
/// entry out in a contiguous [`PlfArena`]; the scalar query loops then walk
/// `ids`/arena slices with precomputed `min_cost` bounds instead of chasing
/// per-entry `Vec<Pt>` pointers.
#[derive(Clone, Debug, Default)]
pub(crate) struct NodeMatrix {
    /// Anchor vertices: all vertices for leaves, union of children borders
    /// for internal nodes.
    pub(crate) anchors: Vec<VertexId>,
    /// Anchor id lookup.
    pub(crate) pos: HashMap<VertexId, usize>,
    /// Row-major `anchors² → Option<Plf>` (direction `i → j`).
    pub(crate) mat: Vec<Option<Plf>>,
    /// Row-major arena ids mirroring `mat` (`NO_PLF` = absent); filled by
    /// [`NodeMatrix::freeze`].
    pub(crate) ids: Vec<PlfId>,
    /// Frozen breakpoints of every stored entry.
    pub(crate) arena: PlfArena,
}

impl NodeMatrix {
    fn entry(&self, from: VertexId, to: VertexId) -> Option<&Plf> {
        let i = *self.pos.get(&from)?;
        let j = *self.pos.get(&to)?;
        self.mat[i * self.anchors.len() + j].as_ref()
    }

    /// Frozen entry `from → to`: `(breakpoint slice, min cost bound)`.
    #[inline]
    // td-lint: hot
    fn entry_frozen(&self, from: VertexId, to: VertexId) -> Option<(PlfSlice<'_>, f64)> {
        let i = *self.pos.get(&from)?;
        let j = *self.pos.get(&to)?;
        debug_assert!(i * self.anchors.len() + j < self.ids.len());
        let id = self.ids[i * self.anchors.len() + j];
        if id == NO_PLF {
            return None;
        }
        Some((self.arena.slice(id), self.arena.min_cost(id)))
    }

    /// Copies every stored entry into the contiguous arena (idempotent:
    /// rebuilds from the current `mat`).
    pub(crate) fn freeze(&mut self) {
        let total: usize = self.mat.iter().flatten().map(|f| f.len()).sum();
        let mut arena = PlfArena::with_capacity(self.mat.len(), total);
        self.ids = self
            .mat
            .iter()
            .map(|slot| match slot {
                Some(f) => arena.push(f),
                None => NO_PLF,
            })
            .collect();
        self.arena = arena;
    }

    fn points(&self) -> usize {
        self.mat.iter().flatten().map(|f| f.len()).sum()
    }

    fn bytes(&self) -> usize {
        self.mat
            .iter()
            .flatten()
            .map(|f| f.heap_bytes())
            .sum::<usize>()
            + self.mat.capacity() * std::mem::size_of::<Option<Plf>>()
            + self.ids.capacity() * std::mem::size_of::<PlfId>()
            + self.arena.heap_bytes()
    }
}

/// The TD-G-tree index.
pub struct TdGtree {
    pub(crate) graph: TdGraph,
    pub(crate) pt: PartitionTree,
    pub(crate) mats: Vec<NodeMatrix>,
    /// Construction wall time, seconds.
    pub build_secs: f64,
}

impl TdGtree {
    /// Builds the index: partition tree, bottom-up matrix assembly, then the
    /// top-down global refinement pass.
    pub fn build(graph: TdGraph, cfg: GtreeConfig) -> TdGtree {
        let t0 = Instant::now();
        let pt = PartitionTree::build(&graph, cfg.max_leaf);
        let nn = pt.nodes.len();
        let mut mats: Vec<NodeMatrix> = vec![NodeMatrix::default(); nn];

        // Bottom-up assembly: deepest nodes first.
        let mut order: Vec<usize> = (0..nn).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(pt.nodes[i].depth));
        for &idx in &order {
            let anchors = anchor_set(&pt, idx);
            let local = supergraph(&graph, &pt, &mats, idx, &anchors, None);
            mats[idx] = all_pairs(&local, anchors);
        }

        // Top-down refinement: rebuild each non-root matrix with the parent's
        // (already global) entries among this node's borders as extra edges.
        let mut down: Vec<usize> = (0..nn).collect();
        down.sort_by_key(|&i| pt.nodes[i].depth);
        for &idx in &down {
            let Some(parent) = pt.nodes[idx].parent else {
                continue;
            };
            let anchors = anchor_set(&pt, idx);
            let outside: Vec<(VertexId, VertexId, Plf)> = border_pairs(&pt, &mats, idx, parent);
            let local = supergraph(&graph, &pt, &mats, idx, &anchors, Some(&outside));
            mats[idx] = all_pairs(&local, anchors);
        }

        // Freeze every refined matrix into its contiguous arena: the scalar
        // query loops run exclusively on the frozen layout.
        for m in &mut mats {
            m.freeze();
        }

        TdGtree {
            graph,
            pt,
            mats,
            build_secs: t0.elapsed().as_secs_f64(),
        }
    }

    /// Fills `plan` with the `(matrix node, target border owner)` relaxation
    /// stages between `ls`'s borders and `ld`'s borders: up through the
    /// nodes strictly between the leaf and the LCA, across the LCA towards
    /// the d-side child, then down to `ld`. `path_s`/`path_d` are reusable
    /// buffers for the partition-tree paths.
    fn stage_plan_into(
        &self,
        ls: usize,
        ld: usize,
        plan: &mut Vec<(usize, usize)>,
        path_s: &mut Vec<usize>,
        path_d: &mut Vec<usize>,
    ) {
        let lca = self.pt.lca(ls, ld);
        self.pt.path_up_into(ls, lca, path_s);
        self.pt.path_up_into(ld, lca, path_d);
        plan.clear();
        // Upward: the nodes strictly between the leaf and the LCA.
        for &n in &path_s[1..path_s.len().saturating_sub(1)] {
            plan.push((n, n));
        }
        // Across the LCA: from s-side child borders to d-side child borders.
        let child_d = path_d[path_d.len() - 2];
        plan.push((lca, child_d));
        // Downward on d's side (path_d[0] == ld, so `i - 1` is the node below).
        for i in (1..path_d.len() - 1).rev() {
            plan.push((path_d[i], path_d[i - 1]));
        }
    }

    /// Travel cost query `Q(s, d, t)`.
    ///
    /// Convenience form allocating fresh scratch; hot paths should hold a
    /// [`GtreeScratch`] and call [`TdGtree::query_cost_with`].
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        self.query_cost_with(&mut GtreeScratch::default(), s, d, t)
    }

    /// Travel cost query reusing `scratch` (no fresh hash maps after
    /// warm-up).
    // td-lint: hot
    pub fn query_cost_with(
        &self,
        scratch: &mut GtreeScratch,
        s: VertexId,
        d: VertexId,
        t: f64,
    ) -> Option<f64> {
        scratch.sweep.stats.reset();
        if s == d {
            return Some(0.0);
        }
        debug_assert!((s as usize) < self.pt.leaf_of.len() && (d as usize) < self.pt.leaf_of.len());
        let ls = self.pt.leaf_of[s as usize];
        let ld = self.pt.leaf_of[d as usize];
        if ls == ld {
            // Same-leaf: the refined leaf matrix is globally exact.
            scratch.sweep.stats.eval_scalar(1);
            return self.mats[ls].entry_frozen(s, d).map(|(f, _)| f.eval(t));
        }
        let GtreeScratch {
            plan,
            path_s,
            path_d,
            cur,
            next,
            sweep,
        } = scratch;
        self.stage_plan_into(ls, ld, plan, path_s, path_d);

        // Upward: arrivals at the source leaf's border set.
        cur.clear();
        for &b in &self.pt.nodes[ls].borders {
            if let Some((f, _)) = self.mats[ls].entry_frozen(s, b) {
                sweep.stats.eval_scalar(1);
                let a = t + f.eval(t);
                cur.entry(b).and_modify(|x| *x = x.min(a)).or_insert(a);
            }
        }
        // Relax through the staged border sets.
        for &(n, tgt) in plan.iter() {
            relax_scalar_into(&self.mats[n], cur, &self.pt.nodes[tgt].borders, sweep, next);
            std::mem::swap(cur, next);
        }
        // Into d.
        let mut best: Option<f64> = None;
        for (&b, &a) in cur.iter() {
            if let Some((f, min)) = self.mats[ld].entry_frozen(b, d) {
                // Lower-bound prune: the final hop costs at least `min`.
                if best.is_some_and(|x| a + min >= x) {
                    sweep.stats.prune(1);
                    continue;
                }
                sweep.stats.eval_scalar(1);
                let total = a + f.eval(a);
                if best.is_none_or(|x| total < x) {
                    best = Some(total);
                }
            }
        }
        best.map(|a| a - t)
    }

    /// Travel cost *and* shortest path for `Q(s, d, t)`.
    ///
    /// Runs the scalar border relaxation with predecessor tracking to obtain
    /// the optimal border chain `s → b₁ → … → b_k → d`, then expands each
    /// consecutive hop with a targeted TD-Dijkstra on the original graph.
    /// Every refined matrix entry is globally exact, so each hop expansion
    /// reproduces exactly the hop's matrix cost and the concatenation is a
    /// shortest path; the hops are partition-local, so each expansion only
    /// explores a small region.
    pub fn query_path(&self, s: VertexId, d: VertexId, t: f64) -> Option<(f64, Path)> {
        if s == d {
            return Some((0.0, Path::new(vec![s])));
        }
        let chain = self.border_chain(s, d, t)?;
        let mut vertices = vec![s];
        let mut now = t;
        for w in chain.windows(2) {
            let (u, v) = (w[0], w[1]);
            let (c, seg) = shortest_path(&self.graph, u, v, now)?;
            vertices.extend_from_slice(&seg.vertices[1..]);
            now += c;
        }
        Some((now - t, Path::new(vertices)))
    }

    /// The optimal border chain `[s, b₁, …, b_k, d]` (consecutive duplicates
    /// removed), or `None` when `d` is unreachable from `s`.
    fn border_chain(&self, s: VertexId, d: VertexId, t: f64) -> Option<Vec<VertexId>> {
        let ls = self.pt.leaf_of[s as usize];
        let ld = self.pt.leaf_of[d as usize];
        if ls == ld {
            self.mats[ls].entry(s, d)?;
            return Some(vec![s, d]);
        }
        let (mut plan, mut path_s, mut path_d) = (Vec::new(), Vec::new(), Vec::new());
        self.stage_plan_into(ls, ld, &mut plan, &mut path_s, &mut path_d);

        // Layered relaxation with predecessors: layers[k] maps a border to
        // (arrival, predecessor border in layer k-1); layer 0's predecessor
        // is `s` itself.
        let mut layers: Vec<HashMap<VertexId, (f64, VertexId)>> =
            Vec::with_capacity(plan.len() + 1);
        let mut cur: HashMap<VertexId, (f64, VertexId)> = HashMap::new();
        for &b in &self.pt.nodes[ls].borders {
            if let Some(f) = self.mats[ls].entry(s, b) {
                let a = t + f.eval(t);
                match cur.entry(b) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        if a < e.get().0 {
                            *e.get_mut() = (a, s);
                        }
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert((a, s));
                    }
                }
            }
        }
        for &(n, tgt) in &plan {
            let next = relax_pred(&self.mats[n], &cur, &self.pt.nodes[tgt].borders);
            layers.push(std::mem::replace(&mut cur, next));
        }
        layers.push(cur);

        // Into d: pick the best final border.
        let last = layers.last()?;
        let mut best: Option<(f64, VertexId)> = None;
        let mut finals: Vec<VertexId> = last.keys().copied().collect();
        finals.sort_unstable();
        for b in finals {
            let (a, _) = last[&b];
            if let Some(f) = self.mats[ld].entry(b, d) {
                let total = a + f.eval(a);
                if best.is_none_or(|(x, _)| total < x) {
                    best = Some((total, b));
                }
            }
        }
        let (_, mut bcur) = best?;

        // Backtrack through the layers.
        let mut rev = vec![d, bcur];
        for li in (1..layers.len()).rev() {
            let pred = layers[li][&bcur].1;
            rev.push(pred);
            bcur = pred;
        }
        rev.push(s);
        rev.reverse();
        rev.dedup();
        Some(rev)
    }

    /// Shortest travel cost function query `f_{s,d}(t)`.
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        let ls = self.pt.leaf_of[s as usize];
        let ld = self.pt.leaf_of[d as usize];
        if ls == ld {
            return self.mats[ls].entry(s, d).cloned();
        }
        let lca = self.pt.lca(ls, ld);
        let path_s = self.pt.path_up(ls, lca);
        let path_d = self.pt.path_up(ld, lca);

        let mut cost: HashMap<VertexId, Plf> = HashMap::new();
        for &b in &self.pt.nodes[ls].borders {
            if let Some(f) = self.mats[ls].entry(s, b) {
                match cost.entry(b) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        *e.get_mut() = e.get().minimum(f);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(f.clone());
                    }
                }
            }
        }
        for &n in &path_s[1..path_s.len().saturating_sub(1)] {
            cost = relax_profile(&self.mats[n], &cost, &self.pt.nodes[n].borders);
        }
        let child_d = path_d[path_d.len() - 2];
        cost = relax_profile(&self.mats[lca], &cost, &self.pt.nodes[child_d].borders);
        for pi in (1..path_d.len() - 1).rev() {
            let n = path_d[pi];
            let next_down: Vec<VertexId> = if pi == 1 {
                self.pt.nodes[ld].borders.clone()
            } else {
                self.pt.nodes[path_d[pi - 1]].borders.clone()
            };
            cost = relax_profile(&self.mats[n], &cost, &next_down);
        }
        let mut best: Option<Plf> = None;
        let mut sources: Vec<VertexId> = cost.keys().copied().collect();
        sources.sort_unstable();
        for b in sources {
            if let Some(f2) = self.mats[ld].entry(b, d) {
                min_into(&mut best, cost[&b].compound(f2, b));
            }
        }
        best
    }

    /// Index memory in bytes (all cached matrices).
    pub fn memory_bytes(&self) -> usize {
        self.mats.iter().map(|m| m.bytes()).sum()
    }

    /// Total cached interpolation points.
    pub fn total_points(&self) -> usize {
        self.mats.iter().map(|m| m.points()).sum()
    }

    /// Number of cached matrix entries (anchor pairs with a stored cost
    /// function) across all partition nodes.
    pub fn num_entries(&self) -> usize {
        self.mats
            .iter()
            .map(|m| m.mat.iter().flatten().count())
            .sum()
    }

    /// Number of partition-tree nodes.
    pub fn num_partitions(&self) -> usize {
        self.pt.nodes.len()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }
}

/// Anchor set of a node: all vertices (leaf) or union of children borders.
fn anchor_set(pt: &PartitionTree, idx: usize) -> Vec<VertexId> {
    let node = &pt.nodes[idx];
    let mut anchors: Vec<VertexId> = if node.children.is_empty() {
        node.vertices.clone()
    } else {
        let mut a: Vec<VertexId> = node
            .children
            .iter()
            .flat_map(|&c| pt.nodes[c].borders.iter().copied())
            .collect();
        // The node's own borders must be present (they are borders of some
        // child too, but be defensive).
        a.extend_from_slice(&node.borders);
        a
    };
    anchors.sort_unstable();
    anchors.dedup();
    anchors
}

/// Adds a local edge whose endpoints came out of a `local_of` map and are
/// therefore dense indices below the builder's vertex count; an out-of-range
/// error is impossible by construction, so release builds drop the edge
/// instead of aborting a long index build.
fn add_local_edge(b: &mut GraphBuilder, x: u32, y: u32, f: Plf) {
    let r = b.edge(x, y, f);
    debug_assert!(r.is_ok(), "local ids are dense by construction");
}

/// Builds the local supergraph over `anchors`:
/// * leaf: induced original edges;
/// * internal: children's border-to-border matrix entries + crossing edges;
/// * plus optional `outside` edges (parent's refined entries).
fn supergraph(
    g: &TdGraph,
    pt: &PartitionTree,
    mats: &[NodeMatrix],
    idx: usize,
    anchors: &[VertexId],
    outside: Option<&[(VertexId, VertexId, Plf)]>,
) -> (TdGraph, HashMap<VertexId, u32>, Vec<VertexId>) {
    let mut local_of: HashMap<VertexId, u32> = HashMap::new();
    for (i, &v) in anchors.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let mut b = GraphBuilder::new(anchors.len());
    let node = &pt.nodes[idx];
    if node.children.is_empty() {
        // Induced subgraph.
        for &v in anchors {
            for &(u, e) in g.out_edges(v) {
                if let (Some(&lv), Some(&lu)) = (local_of.get(&v), local_of.get(&u)) {
                    add_local_edge(&mut b, lv, lu, g.weight(e).clone());
                }
            }
        }
    } else {
        // Children matrices among their borders.
        for &c in &node.children {
            let borders = &pt.nodes[c].borders;
            for &x in borders {
                for &y in borders {
                    if x == y {
                        continue;
                    }
                    if let (Some(f), Some(&lx), Some(&ly)) =
                        (mats[c].entry(x, y), local_of.get(&x), local_of.get(&y))
                    {
                        add_local_edge(&mut b, lx, ly, f.clone());
                    }
                }
            }
        }
        // Crossing edges between children (both endpoints are borders).
        for &v in anchors {
            for &(u, e) in g.out_edges(v) {
                if let (Some(&lv), Some(&lu)) = (local_of.get(&v), local_of.get(&u)) {
                    // Only add original edges that cross children (edges
                    // inside one child are subsumed by its matrix, but adding
                    // them again is harmless thanks to min-merging).
                    add_local_edge(&mut b, lv, lu, g.weight(e).clone());
                }
            }
        }
    }
    if let Some(extra) = outside {
        for (x, y, f) in extra {
            if let (Some(&lx), Some(&ly)) = (local_of.get(x), local_of.get(y)) {
                if lx != ly {
                    add_local_edge(&mut b, lx, ly, f.clone());
                }
            }
        }
    }
    (b.build(), local_of, anchors.to_vec())
}

/// Parent's refined matrix entries among `idx`'s borders.
fn border_pairs(
    pt: &PartitionTree,
    mats: &[NodeMatrix],
    idx: usize,
    parent: usize,
) -> Vec<(VertexId, VertexId, Plf)> {
    let borders = &pt.nodes[idx].borders;
    let mut out = Vec::new();
    for &x in borders {
        for &y in borders {
            if x == y {
                continue;
            }
            if let Some(f) = mats[parent].entry(x, y) {
                out.push((x, y, f.clone()));
            }
        }
    }
    out
}

/// All-pairs profile search over the local supergraph (one search per
/// anchor, parallelised across rows). The local graph is frozen once into
/// the CSR/arena layout and shared read-only by all workers, so every row's
/// search walks flat adjacency with per-edge min-cost pruning.
fn all_pairs(
    local: &(TdGraph, HashMap<VertexId, u32>, Vec<VertexId>),
    anchors: Vec<VertexId>,
) -> NodeMatrix {
    let (g, _, order) = local;
    let fg = g.freeze();
    let k = anchors.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(k.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let rows: Vec<std::sync::Mutex<Vec<Option<Plf>>>> =
        (0..k).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= k {
                    break;
                }
                let prof = profile_search_frozen(g, &fg, i as u32);
                // A poisoned lock only means another worker panicked after
                // finishing its own row; this row's slot is still writable.
                *rows[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = prof.dist;
            });
        }
    });
    let mut mat: Vec<Option<Plf>> = Vec::with_capacity(k * k);
    for row in rows {
        mat.extend(
            row.into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
    }
    let mut pos = HashMap::with_capacity(k);
    for (i, &v) in anchors.iter().enumerate() {
        pos.insert(v, i);
    }
    debug_assert_eq!(&anchors, order);
    NodeMatrix {
        anchors,
        pos,
        mat,
        ids: Vec::new(),
        arena: PlfArena::new(),
    }
}

/// Scalar relaxation through a node matrix into `out` (cleared first):
/// earliest arrivals at `targets`. Runs source-major on the frozen arena
/// layout: all of one source's matrix entries evaluate at the *same*
/// departure time, so the survivors of the `arrival + min_cost` prune (the
/// min bound is admissible, so the skip is exact) batch through the
/// `td-plf` arena kernel in one call. Final bests are a plain `min` fold,
/// so the sweep order cannot change the result.
// td-lint: hot
fn relax_scalar_into(
    m: &NodeMatrix,
    arr: &HashMap<VertexId, f64>,
    targets: &[VertexId],
    sweep: &mut SweepScratch,
    out: &mut HashMap<VertexId, f64>,
) {
    out.clear();
    let k = m.anchors.len();
    let nt = targets.len();
    sweep.cols.clear();
    sweep.best.clear();
    sweep.cols.resize(nt, usize::MAX);
    sweep.best.resize(nt, f64::INFINITY);
    sweep.ids.resize(nt, NO_PLF);
    sweep.slots.resize(nt, 0);
    sweep.vals.resize(nt, 0.0);
    for (j, &b2) in targets.iter().enumerate() {
        debug_assert!(j < sweep.cols.len() && j < sweep.best.len());
        sweep.cols[j] = m.pos.get(&b2).copied().unwrap_or(usize::MAX);
        // Carry-over: a border already reached stays reachable even when the
        // matrix holds no incoming entry for it.
        if let Some(&a0) = arr.get(&b2) {
            sweep.best[j] = a0;
        }
    }
    for (&b1, &a) in arr {
        let Some(&row) = m.pos.get(&b1) else { continue };
        // Gather this source's surviving entries …
        let mut cnt = 0usize;
        for (j, &b2) in targets.iter().enumerate() {
            debug_assert!(j < sweep.cols.len());
            let col = sweep.cols[j];
            if b2 == b1 || col == usize::MAX {
                continue;
            }
            debug_assert!(row * k + col < m.ids.len());
            let id = m.ids[row * k + col];
            if id == NO_PLF {
                continue;
            }
            if a + m.arena.min_cost(id) >= sweep.best[j] {
                sweep.stats.prune(1);
                continue;
            }
            debug_assert!(cnt < sweep.ids.len());
            sweep.ids[cnt] = id;
            sweep.slots[cnt] = j as u32;
            cnt += 1;
        }
        // … evaluate them in one batched arena pass …
        eval_ids_at(&m.arena, &sweep.ids[..cnt], a, &mut sweep.vals[..cnt]);
        sweep.stats.relax(nt as u64);
        sweep.stats.eval_batched(cnt as u64);
        // … and fold the candidates into the running bests.
        for i in 0..cnt {
            debug_assert!(i < sweep.slots.len() && i < sweep.vals.len());
            let j = sweep.slots[i] as usize;
            let cand = a + sweep.vals[i];
            if cand < sweep.best[j] {
                sweep.best[j] = cand;
            }
        }
    }
    for (j, &b2) in targets.iter().enumerate() {
        debug_assert!(j < sweep.best.len());
        if sweep.best[j] < f64::INFINITY {
            out.insert(b2, sweep.best[j]);
        }
    }
}

/// [`relax_scalar_into`] with predecessor tracking for path recovery: each
/// target maps to `(arrival, best predecessor border)`; a carried-over value
/// records the border itself as its predecessor.
fn relax_pred(
    m: &NodeMatrix,
    arr: &HashMap<VertexId, (f64, VertexId)>,
    targets: &[VertexId],
) -> HashMap<VertexId, (f64, VertexId)> {
    let mut out: HashMap<VertexId, (f64, VertexId)> = HashMap::with_capacity(targets.len());
    let mut sources: Vec<VertexId> = arr.keys().copied().collect();
    sources.sort_unstable();
    for &b2 in targets {
        let mut best: Option<(f64, VertexId)> = arr.get(&b2).map(|&(a, _)| (a, b2));
        for &b1 in &sources {
            let (a, _) = arr[&b1];
            if b1 == b2 {
                continue;
            }
            if let Some((f, min)) = m.entry_frozen(b1, b2) {
                if best.is_some_and(|(x, _)| a + min >= x) {
                    continue;
                }
                let cand = a + f.eval(a);
                if best.is_none_or(|(x, _)| cand < x) {
                    best = Some((cand, b1));
                }
            }
        }
        if let Some(v) = best {
            out.insert(b2, v);
        }
    }
    out
}

/// Profile relaxation through a node matrix.
fn relax_profile(
    m: &NodeMatrix,
    cost: &HashMap<VertexId, Plf>,
    targets: &[VertexId],
) -> HashMap<VertexId, Plf> {
    let mut out: HashMap<VertexId, Plf> = HashMap::with_capacity(targets.len());
    let mut sources: Vec<VertexId> = cost.keys().copied().collect();
    sources.sort_unstable();
    for &b2 in targets {
        let mut best: Option<Plf> = cost.get(&b2).cloned();
        for &b1 in &sources {
            if b1 == b2 {
                continue;
            }
            if let Some(f2) = m.entry(b1, b2) {
                min_into(&mut best, cost[&b1].compound(f2, b1));
            }
        }
        if let Some(f) = best {
            out.insert(b2, f);
        }
    }
    out
}

// Compile-time pin: built indexes are shared read-only across query threads
// and scratches move to worker threads. A future `Rc`/`Cell` field fails
// this line instead of a test.
const _: () = {
    const fn shared_across_threads<T: Send + Sync>() {}
    const fn moves_to_worker<T: Send>() {}
    shared_across_threads::<TdGtree>();
    moves_to_worker::<GtreeScratch>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::shortest_path_cost;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    #[test]
    fn gtree_cost_matches_the_oracle() {
        for seed in 0..4u64 {
            let n = 60;
            let g = seeded_graph(seed, n, 40, 3);
            let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 10 });
            let mut rng = StdRng::seed_from_u64(seed ^ 0xaaaa);
            for _ in 0..50 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                let want = shortest_path_cost(&g, s, d, t);
                let got = gt.query_cost(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-4,
                        "seed={seed} s={s} d={d} t={t}: oracle {a} vs gtree {b}"
                    ),
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn gtree_profile_matches_scalar_queries() {
        let n = 40;
        let g = seeded_graph(7, n, 25, 3);
        let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 8 });
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            match gt.query_profile(s, d) {
                Some(f) => {
                    for k in 0..8 {
                        let t = k as f64 * DAY / 8.0 + 11.0;
                        let scalar = gt.query_cost(s, d, t).expect("profile exists");
                        assert!(
                            (f.eval(t) - scalar).abs() < 1e-4,
                            "s={s} d={d} t={t}: profile {} vs scalar {scalar}",
                            f.eval(t)
                        );
                    }
                }
                None => assert!(gt.query_cost(s, d, 0.0).is_none()),
            }
        }
    }

    #[test]
    fn same_leaf_queries_are_exact() {
        let n = 30;
        let g = seeded_graph(3, n, 20, 3);
        let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 64 }); // single leaf
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let t = 5_000.0;
                let want = shortest_path_cost(&g, s, d, t);
                let got = gt.query_cost(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-5, "s={s} d={d}"),
                    (None, None) => {}
                    other => panic!("s={s} d={d}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn recovered_paths_are_shortest_and_replay_their_cost() {
        for seed in 0..3u64 {
            let n = 60;
            let g = seeded_graph(seed, n, 40, 3);
            let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 10 });
            let mut rng = StdRng::seed_from_u64(seed ^ 0xbbbb);
            for _ in 0..40 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                match gt.query_path(s, d, t) {
                    Some((cost, path)) => {
                        assert_eq!(path.source(), s);
                        assert_eq!(path.destination(), d);
                        assert!(path.is_valid(&g), "seed={seed} invalid path");
                        let replay = path.cost(&g, t).expect("valid path replays");
                        assert!(
                            (replay - cost).abs() < 1e-5,
                            "seed={seed} s={s} d={d} t={t}: reported {cost} vs replay {replay}"
                        );
                        let want = shortest_path_cost(&g, s, d, t).expect("reachable");
                        assert!(
                            (want - cost).abs() < 1e-4,
                            "seed={seed} s={s} d={d} t={t}: not shortest ({cost} vs {want})"
                        );
                    }
                    None => assert!(shortest_path_cost(&g, s, d, t).is_none()),
                }
            }
        }
    }

    #[test]
    fn reused_scratch_matches_fresh_scratch() {
        let n = 50;
        let g = seeded_graph(2, n, 30, 3);
        let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 12 });
        let mut scratch = GtreeScratch::default();
        let mut rng = StdRng::seed_from_u64(0x5c5c);
        for _ in 0..80 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            let t = rng.gen_range(0.0..DAY);
            assert_eq!(
                gt.query_cost_with(&mut scratch, s, d, t),
                gt.query_cost(s, d, t),
                "s={s} d={d} t={t}"
            );
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let g = seeded_graph(5, 50, 30, 3);
        let gt = TdGtree::build(g, GtreeConfig { max_leaf: 10 });
        assert!(gt.memory_bytes() > 0);
        assert!(gt.total_points() > 0);
        assert!(gt.num_partitions() > 1);
        assert!(gt.build_secs >= 0.0);
    }
}
