//! TD-G-tree: border travel-cost-function matrices and assembly queries.

use crate::partition::PartitionTree;
use std::collections::HashMap;
use std::time::Instant;
use td_dijkstra::profile_search;
use td_graph::{GraphBuilder, TdGraph, VertexId};
use td_plf::{ops::min_into, Plf};

/// Configuration of the TD-G-tree.
#[derive(Clone, Copy, Debug)]
pub struct GtreeConfig {
    /// Maximum vertices per leaf partition (the original's τ).
    pub max_leaf: usize,
}

impl Default for GtreeConfig {
    fn default() -> Self {
        GtreeConfig { max_leaf: 32 }
    }
}

/// All-pairs travel-cost-function matrix over one node's anchor set.
#[derive(Clone, Debug, Default)]
struct NodeMatrix {
    /// Anchor vertices: all vertices for leaves, union of children borders
    /// for internal nodes.
    anchors: Vec<VertexId>,
    /// Anchor id lookup.
    pos: HashMap<VertexId, usize>,
    /// Row-major `anchors² → Option<Plf>` (direction `i → j`).
    mat: Vec<Option<Plf>>,
}

impl NodeMatrix {
    fn entry(&self, from: VertexId, to: VertexId) -> Option<&Plf> {
        let i = *self.pos.get(&from)?;
        let j = *self.pos.get(&to)?;
        self.mat[i * self.anchors.len() + j].as_ref()
    }

    fn points(&self) -> usize {
        self.mat.iter().flatten().map(|f| f.len()).sum()
    }

    fn bytes(&self) -> usize {
        self.mat.iter().flatten().map(|f| f.heap_bytes()).sum::<usize>()
            + self.mat.capacity() * std::mem::size_of::<Option<Plf>>()
    }
}

/// The TD-G-tree index.
pub struct TdGtree {
    graph: TdGraph,
    pt: PartitionTree,
    mats: Vec<NodeMatrix>,
    /// Construction wall time, seconds.
    pub build_secs: f64,
}

impl TdGtree {
    /// Builds the index: partition tree, bottom-up matrix assembly, then the
    /// top-down global refinement pass.
    pub fn build(graph: TdGraph, cfg: GtreeConfig) -> TdGtree {
        let t0 = Instant::now();
        let pt = PartitionTree::build(&graph, cfg.max_leaf);
        let nn = pt.nodes.len();
        let mut mats: Vec<NodeMatrix> = vec![NodeMatrix::default(); nn];

        // Bottom-up assembly: deepest nodes first.
        let mut order: Vec<usize> = (0..nn).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(pt.nodes[i].depth));
        for &idx in &order {
            let anchors = anchor_set(&pt, idx);
            let local = supergraph(&graph, &pt, &mats, idx, &anchors, None);
            mats[idx] = all_pairs(&local, anchors);
        }

        // Top-down refinement: rebuild each non-root matrix with the parent's
        // (already global) entries among this node's borders as extra edges.
        let mut down: Vec<usize> = (0..nn).collect();
        down.sort_by_key(|&i| pt.nodes[i].depth);
        for &idx in &down {
            let Some(parent) = pt.nodes[idx].parent else { continue };
            let anchors = anchor_set(&pt, idx);
            let outside: Vec<(VertexId, VertexId, Plf)> = border_pairs(&pt, &mats, idx, parent);
            let local = supergraph(&graph, &pt, &mats, idx, &anchors, Some(&outside));
            mats[idx] = all_pairs(&local, anchors);
        }

        TdGtree {
            graph,
            pt,
            mats,
            build_secs: t0.elapsed().as_secs_f64(),
        }
    }

    /// Travel cost query `Q(s, d, t)`.
    pub fn query_cost(&self, s: VertexId, d: VertexId, t: f64) -> Option<f64> {
        if s == d {
            return Some(0.0);
        }
        let ls = self.pt.leaf_of[s as usize];
        let ld = self.pt.leaf_of[d as usize];
        if ls == ld {
            // Same-leaf: the refined leaf matrix is globally exact.
            return self.mats[ls].entry(s, d).map(|f| f.eval(t));
        }
        let lca = self.pt.lca(ls, ld);
        let path_s = self.pt.path_up(ls, lca);
        let path_d = self.pt.path_up(ld, lca);

        // Upward: arrivals at successive border sets.
        let mut arr: HashMap<VertexId, f64> = HashMap::new();
        for &b in &self.pt.nodes[ls].borders {
            if let Some(f) = self.mats[ls].entry(s, b) {
                let a = t + f.eval(t);
                arr.entry(b).and_modify(|x| *x = x.min(a)).or_insert(a);
            }
        }
        // Relax through the nodes strictly between the leaf and the LCA.
        for &n in &path_s[1..path_s.len().saturating_sub(1)] {
            arr = relax_scalar(&self.mats[n], &arr, &self.pt.nodes[n].borders);
        }
        // Across the LCA: from s-side child borders to d-side child borders.
        let child_d = path_d[path_d.len() - 2];
        arr = relax_scalar(&self.mats[lca], &arr, &self.pt.nodes[child_d].borders);
        // Downward on d's side.
        for &n in path_d[1..path_d.len() - 1].iter().rev() {
            let next_down: &[VertexId] = if n == path_d[1] {
                &self.pt.nodes[ld].borders
            } else {
                let below = path_d[path_d.iter().position(|&x| x == n).unwrap() - 1];
                &self.pt.nodes[below].borders
            };
            arr = relax_scalar(&self.mats[n], &arr, next_down);
        }
        // Into d.
        let mut best: Option<f64> = None;
        for (&b, &a) in &arr {
            if let Some(f) = self.mats[ld].entry(b, d) {
                let total = a + f.eval(a);
                if best.is_none_or(|x| total < x) {
                    best = Some(total);
                }
            }
        }
        best.map(|a| a - t)
    }

    /// Shortest travel cost function query `f_{s,d}(t)`.
    pub fn query_profile(&self, s: VertexId, d: VertexId) -> Option<Plf> {
        if s == d {
            return Some(Plf::zero());
        }
        let ls = self.pt.leaf_of[s as usize];
        let ld = self.pt.leaf_of[d as usize];
        if ls == ld {
            return self.mats[ls].entry(s, d).cloned();
        }
        let lca = self.pt.lca(ls, ld);
        let path_s = self.pt.path_up(ls, lca);
        let path_d = self.pt.path_up(ld, lca);

        let mut cost: HashMap<VertexId, Plf> = HashMap::new();
        for &b in &self.pt.nodes[ls].borders {
            if let Some(f) = self.mats[ls].entry(s, b) {
                match cost.entry(b) {
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        *e.get_mut() = e.get().minimum(f);
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(f.clone());
                    }
                }
            }
        }
        for &n in &path_s[1..path_s.len().saturating_sub(1)] {
            cost = relax_profile(&self.mats[n], &cost, &self.pt.nodes[n].borders);
        }
        let child_d = path_d[path_d.len() - 2];
        cost = relax_profile(&self.mats[lca], &cost, &self.pt.nodes[child_d].borders);
        for &n in path_d[1..path_d.len() - 1].iter().rev() {
            let next_down: Vec<VertexId> = if n == path_d[1] {
                self.pt.nodes[ld].borders.clone()
            } else {
                let below = path_d[path_d.iter().position(|&x| x == n).unwrap() - 1];
                self.pt.nodes[below].borders.clone()
            };
            cost = relax_profile(&self.mats[n], &cost, &next_down);
        }
        let mut best: Option<Plf> = None;
        for (&b, f1) in &cost {
            if let Some(f2) = self.mats[ld].entry(b, d) {
                min_into(&mut best, f1.compound(f2, b));
            }
        }
        best
    }

    /// Index memory in bytes (all cached matrices).
    pub fn memory_bytes(&self) -> usize {
        self.mats.iter().map(|m| m.bytes()).sum()
    }

    /// Total cached interpolation points.
    pub fn total_points(&self) -> usize {
        self.mats.iter().map(|m| m.points()).sum()
    }

    /// Number of partition-tree nodes.
    pub fn num_partitions(&self) -> usize {
        self.pt.nodes.len()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &TdGraph {
        &self.graph
    }
}

/// Anchor set of a node: all vertices (leaf) or union of children borders.
fn anchor_set(pt: &PartitionTree, idx: usize) -> Vec<VertexId> {
    let node = &pt.nodes[idx];
    let mut anchors: Vec<VertexId> = if node.children.is_empty() {
        node.vertices.clone()
    } else {
        let mut a: Vec<VertexId> = node
            .children
            .iter()
            .flat_map(|&c| pt.nodes[c].borders.iter().copied())
            .collect();
        // The node's own borders must be present (they are borders of some
        // child too, but be defensive).
        a.extend_from_slice(&node.borders);
        a
    };
    anchors.sort_unstable();
    anchors.dedup();
    anchors
}

/// Builds the local supergraph over `anchors`:
/// * leaf: induced original edges;
/// * internal: children's border-to-border matrix entries + crossing edges;
/// * plus optional `outside` edges (parent's refined entries).
fn supergraph(
    g: &TdGraph,
    pt: &PartitionTree,
    mats: &[NodeMatrix],
    idx: usize,
    anchors: &[VertexId],
    outside: Option<&[(VertexId, VertexId, Plf)]>,
) -> (TdGraph, HashMap<VertexId, u32>, Vec<VertexId>) {
    let mut local_of: HashMap<VertexId, u32> = HashMap::new();
    for (i, &v) in anchors.iter().enumerate() {
        local_of.insert(v, i as u32);
    }
    let mut b = GraphBuilder::new(anchors.len());
    let node = &pt.nodes[idx];
    if node.children.is_empty() {
        // Induced subgraph.
        for &v in anchors {
            for &(u, e) in g.out_edges(v) {
                if let Some(&lu) = local_of.get(&u) {
                    b.edge(local_of[&v], lu, g.weight(e).clone()).expect("valid local edge");
                }
            }
        }
    } else {
        // Children matrices among their borders.
        for &c in &node.children {
            let borders = &pt.nodes[c].borders;
            for &x in borders {
                for &y in borders {
                    if x == y {
                        continue;
                    }
                    if let Some(f) = mats[c].entry(x, y) {
                        b.edge(local_of[&x], local_of[&y], f.clone()).expect("valid");
                    }
                }
            }
        }
        // Crossing edges between children (both endpoints are borders).
        for &v in anchors {
            for &(u, e) in g.out_edges(v) {
                if let Some(&lu) = local_of.get(&u) {
                    // Only add original edges that cross children (edges
                    // inside one child are subsumed by its matrix, but adding
                    // them again is harmless thanks to min-merging).
                    b.edge(local_of[&v], lu, g.weight(e).clone()).expect("valid");
                }
            }
        }
    }
    if let Some(extra) = outside {
        for (x, y, f) in extra {
            if let (Some(&lx), Some(&ly)) = (local_of.get(x), local_of.get(y)) {
                if lx != ly {
                    b.edge(lx, ly, f.clone()).expect("valid");
                }
            }
        }
    }
    (b.build(), local_of, anchors.to_vec())
}

/// Parent's refined matrix entries among `idx`'s borders.
fn border_pairs(
    pt: &PartitionTree,
    mats: &[NodeMatrix],
    idx: usize,
    parent: usize,
) -> Vec<(VertexId, VertexId, Plf)> {
    let borders = &pt.nodes[idx].borders;
    let mut out = Vec::new();
    for &x in borders {
        for &y in borders {
            if x == y {
                continue;
            }
            if let Some(f) = mats[parent].entry(x, y) {
                out.push((x, y, f.clone()));
            }
        }
    }
    out
}

/// All-pairs profile search over the local supergraph (one search per
/// anchor, parallelised across rows).
fn all_pairs(local: &(TdGraph, HashMap<VertexId, u32>, Vec<VertexId>), anchors: Vec<VertexId>) -> NodeMatrix {
    let (g, _, order) = local;
    let k = anchors.len();
    let threads = std::thread::available_parallelism()
        .map_or(1, |p| p.get())
        .min(k.max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let rows: Vec<std::sync::Mutex<Vec<Option<Plf>>>> =
        (0..k).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= k {
                    break;
                }
                let prof = profile_search(g, i as u32);
                *rows[i].lock().expect("no poisoning") = prof.dist;
            });
        }
    });
    let mut mat: Vec<Option<Plf>> = Vec::with_capacity(k * k);
    for row in rows {
        mat.extend(row.into_inner().expect("no poisoning"));
    }
    let mut pos = HashMap::with_capacity(k);
    for (i, &v) in anchors.iter().enumerate() {
        pos.insert(v, i);
    }
    debug_assert_eq!(&anchors, order);
    NodeMatrix { anchors, pos, mat }
}

/// Scalar relaxation through a node matrix: earliest arrivals at `targets`.
fn relax_scalar(
    m: &NodeMatrix,
    arr: &HashMap<VertexId, f64>,
    targets: &[VertexId],
) -> HashMap<VertexId, f64> {
    let mut out: HashMap<VertexId, f64> = HashMap::with_capacity(targets.len());
    for &b2 in targets {
        let mut best: Option<f64> = arr.get(&b2).copied();
        for (&b1, &a) in arr {
            if b1 == b2 {
                continue;
            }
            if let Some(f) = m.entry(b1, b2) {
                let cand = a + f.eval(a);
                if best.is_none_or(|x| cand < x) {
                    best = Some(cand);
                }
            }
        }
        if let Some(a) = best {
            out.insert(b2, a);
        }
    }
    out
}

/// Profile relaxation through a node matrix.
fn relax_profile(
    m: &NodeMatrix,
    cost: &HashMap<VertexId, Plf>,
    targets: &[VertexId],
) -> HashMap<VertexId, Plf> {
    let mut out: HashMap<VertexId, Plf> = HashMap::with_capacity(targets.len());
    for &b2 in targets {
        let mut best: Option<Plf> = cost.get(&b2).cloned();
        for (&b1, f1) in cost {
            if b1 == b2 {
                continue;
            }
            if let Some(f2) = m.entry(b1, b2) {
                min_into(&mut best, f1.compound(f2, b1));
            }
        }
        if let Some(f) = best {
            out.insert(b2, f);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;
    use td_dijkstra::shortest_path_cost;
    use td_gen::random_graph::seeded_graph;
    use td_plf::DAY;

    #[test]
    fn gtree_cost_matches_the_oracle() {
        for seed in 0..4u64 {
            let n = 60;
            let g = seeded_graph(seed, n, 40, 3);
            let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 10 });
            let mut rng = StdRng::seed_from_u64(seed ^ 0xaaaa);
            for _ in 0..50 {
                let s = rng.gen_range(0..n) as u32;
                let d = rng.gen_range(0..n) as u32;
                let t = rng.gen_range(0.0..DAY);
                let want = shortest_path_cost(&g, s, d, t);
                let got = gt.query_cost(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() < 1e-4,
                        "seed={seed} s={s} d={d} t={t}: oracle {a} vs gtree {b}"
                    ),
                    (None, None) => {}
                    other => panic!("seed={seed} s={s} d={d}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn gtree_profile_matches_scalar_queries() {
        let n = 40;
        let g = seeded_graph(7, n, 25, 3);
        let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 8 });
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let s = rng.gen_range(0..n) as u32;
            let d = rng.gen_range(0..n) as u32;
            match gt.query_profile(s, d) {
                Some(f) => {
                    for k in 0..8 {
                        let t = k as f64 * DAY / 8.0 + 11.0;
                        let scalar = gt.query_cost(s, d, t).expect("profile exists");
                        assert!(
                            (f.eval(t) - scalar).abs() < 1e-4,
                            "s={s} d={d} t={t}: profile {} vs scalar {scalar}",
                            f.eval(t)
                        );
                    }
                }
                None => assert!(gt.query_cost(s, d, 0.0).is_none()),
            }
        }
    }

    #[test]
    fn same_leaf_queries_are_exact() {
        let n = 30;
        let g = seeded_graph(3, n, 20, 3);
        let gt = TdGtree::build(g.clone(), GtreeConfig { max_leaf: 64 }); // single leaf
        for s in 0..n as u32 {
            for d in 0..n as u32 {
                let t = 5_000.0;
                let want = shortest_path_cost(&g, s, d, t);
                let got = gt.query_cost(s, d, t);
                match (want, got) {
                    (Some(a), Some(b)) => assert!((a - b).abs() < 1e-5, "s={s} d={d}"),
                    (None, None) => {}
                    other => panic!("s={s} d={d}: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn memory_accounting_positive() {
        let g = seeded_graph(5, 50, 30, 3);
        let gt = TdGtree::build(g, GtreeConfig { max_leaf: 10 });
        assert!(gt.memory_bytes() > 0);
        assert!(gt.total_points() > 0);
        assert!(gt.num_partitions() > 1);
        assert!(gt.build_secs >= 0.0);
    }
}
