#![forbid(unsafe_code)]
//! # td-gtree — the TD-G-tree baseline
//!
//! Re-implementation of the paper's main competitor, TD-G-tree \[29\]
//! (Wang, Li, Tang, VLDB 2019): a hierarchical balanced partitioning of the
//! road network where every partition-tree node caches matrices of shortest
//! travel-cost functions over its *border* vertices, and queries assemble
//! cached functions bottom-up through the partition tree.
//!
//! Differences from the original, documented in DESIGN.md §4:
//! * partitioning uses a double-BFS balanced bisection instead of METIS
//!   (unavailable offline) — border fractions on road-like graphs are
//!   comparable;
//! * after the bottom-up assembly we run a top-down *refinement* pass that
//!   makes every cached matrix globally exact, so both same-leaf and
//!   cross-leaf queries are exact on arbitrary graphs (the original relies on
//!   partition-locality assumptions for some path shapes).
//!
//! The structural costs the paper criticises — hierarchical redundancy of
//! cached functions and expensive construction — are faithfully present.

pub mod index;
pub mod partition;
pub mod persist;

pub use index::{GtreeConfig, GtreeScratch, TdGtree};
pub use partition::{bisect, PartitionTree};
